"""Differential functional-correctness tests: every core vs the ISA machine.

The paper's verification scheme *assumes* the out-of-order processor is
functionally correct (§5.4) and argues functional verification is done
separately.  This module is that separate verification: committed
instruction streams of every core, under every defense, must match the
single-cycle ISA machine on randomized programs, memories and predictor
behaviours.
"""

from __future__ import annotations

import random

import pytest

from repro.isa.encoding import space_boom, space_mul, space_small
from repro.isa.machine import IsaMachine
from repro.isa.params import MachineParams
from repro.isa.program import Program, random_memory, random_program
from repro.uarch.boom import boom, boom_params
from repro.uarch.config import Defense
from repro.uarch.driver import run_concrete, seeded_predictor
from repro.uarch.inorder import InOrderCore
from repro.uarch.simple_ooo import simple_ooo
from repro.uarch.superscalar import ridecore

N_PROGRAMS = 60


def _architectural_view(record):
    """Project a commit record onto its architectural content."""
    return (
        record.pc,
        record.inst,
        record.wb,
        record.addr,
        record.taken,
        record.mul_ops,
        record.exception,
    )


def _check_against_isa(core, space, params, seed):
    rng = random.Random(seed)
    isa = IsaMachine(params)
    for index in range(N_PROGRAMS):
        program = random_program(space, params.imem_size, rng)
        dmem = random_memory(params, rng)
        predictor = seeded_predictor(seed * 1_000 + index)
        oracle = isa.run(program, dmem)
        run = run_concrete(core, program, dmem, predictor=predictor)
        got = [_architectural_view(r) for r in run.commits]
        want = [_architectural_view(r) for r in oracle]
        assert got == want, (
            f"commit stream diverged from ISA semantics\n"
            f"program:\n{program.listing()}\ndmem={dmem}"
        )


@pytest.mark.parametrize("defense", list(Defense))
def test_simple_ooo_matches_isa(defense):
    params = MachineParams(value_bits=2)
    core = simple_ooo(defense, params=params)
    _check_against_isa(core, space_small(), params, seed=hash(defense.value) % 999)


@pytest.mark.parametrize("rob_size", [2, 4, 8])
def test_simple_ooo_rob_sizes_match_isa(rob_size):
    params = MachineParams(value_bits=2)
    core = simple_ooo(Defense.NONE, params=params, rob_size=rob_size)
    _check_against_isa(core, space_small(), params, seed=rob_size)


def test_inorder_matches_isa():
    params = MachineParams(value_bits=2)
    _check_against_isa(InOrderCore(params), space_small(), params, seed=7)


def test_ridecore_matches_isa():
    params = MachineParams(value_bits=2)
    _check_against_isa(ridecore(params=params), space_mul(), params, seed=11)


@pytest.mark.parametrize("spec_exc", [True, False])
def test_boom_matches_isa(spec_exc):
    params = boom_params()
    core = boom(params=params, speculative_exceptions=spec_exc)
    _check_against_isa(core, space_boom(), params, seed=13 + spec_exc)


def test_dom_with_cache_matches_isa():
    params = MachineParams(value_bits=2, n_public=3)
    core = simple_ooo(Defense.DOM_SPECTRE, params=params, rob_size=8)
    _check_against_isa(core, space_small(), params, seed=17)
