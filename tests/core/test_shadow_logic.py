"""Unit tests for the two-phase Contract Shadow Logic (Listing 1)."""

from __future__ import annotations

from repro.core.contracts import sandboxing
from repro.core.shadow import ContractShadowLogic
from repro.events import CommitRecord, CycleOutput
from repro.isa.instruction import HALT, load

BOTH = (True, True)


def _out(commits=(), membus=(), halted=False):
    return CycleOutput(commits=tuple(commits), membus=tuple(membus), halted=halted)


def _load_commit(seq, wb):
    inst = load(1, 0, 0)
    return CommitRecord(
        seq=seq, pc=0, inst=inst, wb=wb, addr=0, taken=None, mul_ops=None,
        exception=None,
    )


def _halt_commit(seq):
    return CommitRecord(
        seq=seq, pc=1, inst=HALT, wb=None, addr=None, taken=None,
        mul_ops=None, exception=None,
    )


def test_phase1_no_deviation_stays_lockstep():
    shadow = ContractShadowLogic(sandboxing())
    verdict = shadow.on_cycle((_out(), _out()), (None, None), (None, None), BOTH)
    assert not verdict.assume_violated and not verdict.assertion_failed
    assert shadow.phase == ContractShadowLogic.PHASE_LOCKSTEP
    assert shadow.pauses() == (False, False)


def test_membus_deviation_enters_phase2_and_records_tails():
    shadow = ContractShadowLogic(sandboxing())
    verdict = shadow.on_cycle(
        (_out(membus=(1,)), _out(membus=(2,))), (5, 7), (3, 3), BOTH
    )
    assert not verdict.assertion_failed  # drain must complete first
    assert shadow.phase == ContractShadowLogic.PHASE_DRAIN
    assert shadow.suppress_fetch()


def test_commit_count_deviation_enters_phase2():
    shadow = ContractShadowLogic(sandboxing())
    shadow.on_cycle(
        (_out(commits=[_load_commit(0, 1)]), _out()), (2, 2), (1, 0), BOTH
    )
    assert shadow.phase == ContractShadowLogic.PHASE_DRAIN


def test_assertion_fires_once_both_sides_drain():
    shadow = ContractShadowLogic(sandboxing())
    shadow.on_cycle((_out(membus=(1,)), _out(membus=(2,))), (4, 4), (2, 2), BOTH)
    # Still draining: oldest in flight (3) has not passed the tail (4).
    verdict = shadow.on_cycle((_out(), _out()), (4, 4), (3, 3), BOTH)
    assert not verdict.assertion_failed
    # Both ROBs empty: everything in flight at the deviation has resolved.
    verdict = shadow.on_cycle((_out(), _out()), (None, None), (None, None), BOTH)
    assert verdict.assertion_failed


def test_mismatched_isa_obs_violates_assumption():
    shadow = ContractShadowLogic(sandboxing())
    verdict = shadow.on_cycle(
        (_out(commits=[_load_commit(0, 1)]), _out(commits=[_load_commit(0, 2)])),
        (0, 0),
        (None, None),
        BOTH,
    )
    assert verdict.assume_violated


def test_skewed_commits_match_across_cycles():
    """Observations queue until the other side commits (synchronization)."""
    shadow = ContractShadowLogic(sandboxing())
    # Deviate first (commit-count mismatch) to reach phase 2.
    shadow.on_cycle(
        (_out(commits=[_load_commit(0, 1)]), _out()), (3, 3), (1, 0), BOTH
    )
    assert shadow.pauses() == (True, False)  # side 0 committed ahead
    # Side 1 catches up with an equal observation: queues drain, no violation.
    verdict = shadow.on_cycle(
        (_out(), _out(commits=[_load_commit(0, 1)])), (3, 3), (1, 1),
        (False, True),
    )
    assert not verdict.assume_violated
    assert shadow.pauses() == (False, False)


def test_skewed_commits_detect_mismatch_after_realignment():
    shadow = ContractShadowLogic(sandboxing())
    shadow.on_cycle(
        (_out(commits=[_load_commit(0, 1)]), _out()), (3, 3), (1, 0), BOTH
    )
    verdict = shadow.on_cycle(
        (_out(), _out(commits=[_load_commit(0, 2)])), (3, 3), (1, 1),
        (False, True),
    )
    assert verdict.assume_violated


def test_unobserved_commits_do_not_queue():
    """HALT commits carry no sandboxing observation."""
    shadow = ContractShadowLogic(sandboxing())
    shadow.on_cycle(
        (_out(commits=[_halt_commit(0)]), _out(commits=[_halt_commit(0)])),
        (0, 0),
        (None, None),
        BOTH,
    )
    assert shadow.pauses() == (False, False)


def test_snapshot_roundtrip_preserves_phase_and_drain_targets():
    shadow = ContractShadowLogic(sandboxing())
    shadow.on_cycle((_out(membus=(1,)), _out(membus=(2,))), (9, 11), (5, 5), BOTH)
    snap = shadow.snapshot((5, 5))
    clone = ContractShadowLogic(sandboxing())
    clone.restore(snap, (5, 5))
    assert clone.phase == shadow.phase
    assert clone.snapshot((5, 5)) == snap


def test_snapshot_rebasing_is_consistent():
    """Rebased snapshots of shifted executions compare equal."""
    shadow_a = ContractShadowLogic(sandboxing())
    shadow_a.on_cycle((_out(membus=(1,)), _out(membus=(2,))), (4, 4), (2, 2), BOTH)
    shadow_b = ContractShadowLogic(sandboxing())
    shadow_b.on_cycle((_out(membus=(1,)), _out(membus=(2,))), (14, 14), (12, 12), BOTH)
    assert shadow_a.snapshot((2, 2)) == shadow_b.snapshot((12, 12))
