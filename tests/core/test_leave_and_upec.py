"""Integration tests for the LEAVE-style and UPEC-style verifiers.

These pin the comparison results of Table 2 / §7.1.3 / §7.1.4:

- LEAVE proves the in-order core but answers UNKNOWN on both the secure
  and the insecure SimpleOoO (auto-generated register-equality invariants
  are insufficient for out-of-order state);
- UPEC (branch-only speculation declaration) finds branch attacks on
  BoomLike but its restricted model cannot exhibit the exception attacks.
"""

from __future__ import annotations

import pytest

from repro.core.contracts import sandboxing
from repro.core.leave import LeaveConfig, flatten_state, leave_verify
from repro.core.secrets import secret_memory_pairs
from repro.core.upec import upec_verify
from repro.isa.encoding import space_boom, space_tiny
from repro.isa.params import MachineParams
from repro.mc.explorer import SearchLimits
from repro.uarch.boom import boom, boom_params
from repro.uarch.config import Defense
from repro.uarch.inorder import InOrderCore
from repro.uarch.simple_ooo import simple_ooo

PARAMS = MachineParams(imem_size=3)


@pytest.fixture(scope="module")
def roots():
    return secret_memory_pairs(PARAMS, "all")


def test_leave_proves_the_inorder_core(roots):
    outcome = leave_verify(
        lambda: InOrderCore(PARAMS), sandboxing(), space_tiny(), roots
    )
    assert outcome.proved
    assert "invariants" in outcome.note


def test_leave_unknown_on_insecure_simple_ooo(roots):
    outcome = leave_verify(
        lambda: simple_ooo(Defense.NONE, params=PARAMS),
        sandboxing(),
        space_tiny(),
        roots,
    )
    assert outcome.kind == "unknown"


def test_leave_unknown_on_secure_simple_ooo(roots):
    """The paper's sharpest LEAVE finding: UNKNOWN even on the secure core."""
    outcome = leave_verify(
        lambda: simple_ooo(Defense.DELAY_SPECTRE, params=PARAMS),
        sandboxing(),
        space_tiny(),
        roots,
    )
    assert outcome.kind == "unknown"


def test_leave_is_deterministic(roots):
    config = LeaveConfig(seed=7)
    run = lambda: leave_verify(
        lambda: InOrderCore(PARAMS), sandboxing(), space_tiny(), roots, config
    )
    assert run().kind == run().kind


def test_flatten_state_roundtrip_labels():
    core = simple_ooo(Defense.NONE, params=PARAMS)
    core.reset((0, 0, 0, 0))
    atoms = flatten_state(core.snapshot())
    labels = [label for label, _ in atoms]
    assert len(labels) == len(set(labels))  # structural paths are unique


def test_upec_finds_a_branch_attack_on_boom():
    outcome = upec_verify(
        lambda: boom(params=boom_params()),
        sandboxing(),
        space_boom(),
        sources=("branch",),
        limits=SearchLimits(timeout_s=120),
        secret_mode="single",
    )
    assert outcome.attacked
    assert "branch" in outcome.note


def test_upec_rejects_unknown_sources():
    with pytest.raises(ValueError):
        upec_verify(
            lambda: boom(params=boom_params()),
            sandboxing(),
            space_boom(),
            sources=("cosmic-rays",),
        )


def test_upec_restricted_model_has_no_transient_fault_forwarding():
    """The declared-source restriction maps to the core configuration."""
    captured = []

    def factory():
        core = boom(params=boom_params())
        captured.append(core)
        return core

    upec_verify(
        factory,
        sandboxing(),
        space_boom(),
        sources=("branch",),
        limits=SearchLimits(max_states=50),
        secret_mode="single",
    )
    # upec_verify wraps the factory: the cores actually verified must have
    # speculative exceptions disabled.
    assert captured, "factory was never called"
