"""Tests for the verification task plumbing and the event records."""

from __future__ import annotations

import pytest

from repro.core.contracts import sandboxing
from repro.core.products import BaselineProduct, ShadowProduct
from repro.core.verifier import VerificationTask
from repro.events import CommitRecord, CycleOutput
from repro.isa.encoding import space_tiny
from repro.isa.instruction import load
from repro.isa.params import MachineParams
from repro.mc.explorer import Root
from repro.mc.result import Counterexample, Outcome, SearchStats
from repro.mc.env import Environment
from repro.uarch.config import Defense
from repro.uarch.simple_ooo import simple_ooo

PARAMS = MachineParams(imem_size=3)


def _task(**overrides):
    base = dict(
        core_factory=lambda: simple_ooo(Defense.NONE, params=PARAMS),
        contract=sandboxing(),
        space=space_tiny(),
    )
    base.update(overrides)
    return VerificationTask(**base)


def test_build_product_schemes():
    assert isinstance(_task(scheme="shadow").build_product(), ShadowProduct)
    assert isinstance(_task(scheme="baseline").build_product(), BaselineProduct)
    with pytest.raises(ValueError):
        _task(scheme="quantum").build_product()


def test_build_roots_uses_secret_mode():
    all_roots = _task(secret_mode="all").build_roots()
    single_roots = _task(secret_mode="single").build_roots()
    assert len(all_roots) == 6 and len(single_roots) == 2


def test_build_roots_override():
    roots = [Root("only", ((0, 0, 0, 0), (0, 0, 0, 1)))]
    assert _task(roots=roots).build_roots() == roots


def test_gate_fetch_knob_reaches_the_shadow_logic():
    gated = _task(gate_fetch=True).build_product()
    ungated = _task(gate_fetch=False).build_product()
    assert gated.shadow.gate_fetch is True
    assert ungated.shadow.gate_fetch is False


def test_cycle_output_uarch_obs():
    record = CommitRecord(
        seq=0, pc=0, inst=load(1, 0, 0), wb=1, addr=0, taken=None,
        mul_ops=None, exception=None,
    )
    out = CycleOutput(commits=(record,), membus=(3, 1), halted=False)
    assert out.uarch_obs == ((3, 1), 1)
    empty = CycleOutput(commits=(), membus=(), halted=True)
    assert empty.uarch_obs == ((), 0)


def test_outcome_summary_and_flags():
    stats = SearchStats(states=10, transitions=20)
    proved = Outcome(kind="proved", elapsed=1.5, stats=stats)
    assert proved.proved and not proved.attacked and not proved.timed_out
    assert "proved" in proved.summary() and "10 states" in proved.summary()
    noted = Outcome(kind="timeout", elapsed=1.0, stats=stats, note="budget")
    assert "[budget]" in noted.summary()


def test_counterexample_program_fills_unfetched_slots():
    env = Environment.empty(3).with_slots({0: load(1, 0, 3)})
    cex = Counterexample(
        root_label="r",
        dmem_pair=((0, 0, 0, 0), (0, 0, 0, 1)),
        env=env,
        depth=4,
        reason="leakage",
    )
    program = cex.program
    assert len(program) == 3
    assert program.fetch(0) == load(1, 0, 3)
    text = cex.describe()
    assert "cycle 4" in text and "load r1, 3(r0)" in text
