"""Tests for the verification products (Fig. 1a and 1b as state machines)."""

from __future__ import annotations

import pytest

from repro.core.assumptions import no_misaligned_accesses
from repro.core.contracts import sandboxing
from repro.core.products import BaselineProduct, ShadowProduct
from repro.events import FetchBundle
from repro.isa.instruction import HALT, branch, lh, load, loadimm
from repro.isa.params import MachineParams
from repro.isa.program import Program
from repro.uarch.boom import boom, boom_params
from repro.uarch.config import Defense
from repro.uarch.simple_ooo import simple_ooo

PARAMS = MachineParams(value_bits=2)


def _drive(product, program, predictor=lambda pc, occ: False, max_cycles=60):
    """Drive a product on a concrete program until it settles."""
    results = []
    for _ in range(max_cycles):
        bundles = [None] * len(product.machines)
        for req in product.fetch_requests():
            inst = program.fetch(req.pc)
            predicted = None
            if inst.op.name == "BRANCH":
                predicted = predictor(req.pc, req.occurrence)
            bundles[req.slot] = FetchBundle(req.pc, inst, predicted)
        result = product.step_cycle(bundles)
        results.append(result)
        if result.failed or result.pruned or product.quiescent():
            return results
    raise AssertionError("product did not settle")


GADGET = Program([branch(0, 3), load(1, 0, 3), load(2, 1, 0)])
BENIGN = Program([loadimm(1, 2), load(2, 1, 0), HALT])


@pytest.mark.parametrize("product_cls", [ShadowProduct, BaselineProduct])
def test_products_fail_on_the_gadget(product_cls):
    product = product_cls(
        lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing()
    )
    product.reset(((0, 0, 0, 1), (0, 0, 0, 2)))
    results = _drive(product, GADGET)
    assert results[-1].failed and results[-1].reason == "leakage"


@pytest.mark.parametrize("product_cls", [ShadowProduct, BaselineProduct])
def test_products_settle_quiescent_on_benign_programs(product_cls):
    product = product_cls(
        lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing()
    )
    product.reset(((0, 0, 0, 1), (0, 0, 0, 2)))
    results = _drive(product, BENIGN)
    assert not results[-1].failed and not results[-1].pruned
    assert product.quiescent()


@pytest.mark.parametrize("product_cls", [ShadowProduct, BaselineProduct])
def test_products_prune_contract_invalid_programs(product_cls):
    # A committed load of the differing secret: ISA observations mismatch.
    invalid = Program([load(1, 0, 3), HALT])
    product = product_cls(
        lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing()
    )
    product.reset(((0, 0, 0, 1), (0, 0, 0, 2)))
    results = _drive(product, invalid)
    assert results[-1].pruned and results[-1].reason == "contract"


@pytest.mark.parametrize("product_cls", [ShadowProduct, BaselineProduct])
def test_assumptions_prune_excluded_behaviours(product_cls):
    program = Program([lh(1, 0, 5), load(2, 1, 0)])
    product = product_cls(
        lambda: boom(params=boom_params()),
        sandboxing(),
        assumptions=(no_misaligned_accesses(),),
    )
    product.reset(((0, 0, 1, 0), (0, 0, 2, 0)))
    results = _drive(product, program)
    assert results[-1].pruned
    assert results[-1].reason == "excluded:no-misaligned"


def test_shadow_product_snapshot_roundtrip_mid_drain():
    product = ShadowProduct(
        lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing()
    )
    product.reset(((0, 0, 0, 1), (0, 0, 0, 2)))
    snap = None
    for _ in range(40):
        bundles = [None] * 2
        for req in product.fetch_requests():
            inst = GADGET.fetch(req.pc)
            predicted = False if inst.op.name == "BRANCH" else None
            bundles[req.slot] = FetchBundle(req.pc, inst, predicted)
        result = product.step_cycle(bundles)
        if product.shadow.phase == 2 and snap is None:
            snap = product.snapshot()
        if result.failed:
            break
    assert snap is not None
    product.restore(snap)
    assert product.shadow.phase == 2
    assert product.snapshot() == snap


def test_baseline_isa_machines_run_ahead_of_the_cores():
    product = BaselineProduct(
        lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing()
    )
    product.reset(((0, 0, 0, 1), (0, 0, 0, 1)))
    _drive(product, BENIGN)
    # Both ISA machines halted at or before the OoO pair (1 inst/cycle).
    assert product.machines[0].halted and product.machines[1].halted
