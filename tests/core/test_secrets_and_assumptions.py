"""Tests for secret-pair enumeration and exclusion assumptions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.assumptions import (
    no_illegal_accesses,
    no_misaligned_accesses,
    no_mispredicted_branches,
)
from repro.core.secrets import secret_memory_pairs
from repro.isa.params import MachineParams


def test_all_mode_is_complete_for_small_domains():
    params = MachineParams(value_bits=1, mem_size=4, n_public=2)
    roots = secret_memory_pairs(params, "all")
    # 2 secret cells x 1-bit values: C(4, 2) unordered image pairs.
    assert len(roots) == 6
    assert len({r.label for r in roots}) == 6


def test_single_mode_varies_one_cell():
    params = MachineParams(value_bits=2, mem_size=4, n_public=2)
    roots = secret_memory_pairs(params, "single")
    assert len(roots) == 2 * 6  # 2 cells x C(4,2) value pairs
    for root in roots:
        left, right = root.dmem_pair
        assert left[: params.n_public] == right[: params.n_public]
        differing = [i for i in range(4) if left[i] != right[i]]
        assert len(differing) == 1


def test_ordered_mode_emits_both_orientations():
    params = MachineParams(value_bits=1, mem_size=4, n_public=2)
    unordered = secret_memory_pairs(params, "all")
    ordered = secret_memory_pairs(params, "ordered")
    # P(4, 2) ordered image pairs = 2 x C(4, 2).
    assert len(ordered) == 2 * len(unordered)
    pairs = {root.dmem_pair for root in ordered}
    assert all((b, a) in pairs for a, b in pairs)


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        secret_memory_pairs(MachineParams(), "everything")


def test_auto_mode_backs_off_to_single_for_large_domains():
    params = MachineParams(value_bits=2, mem_size=4, n_public=2)
    assert len(secret_memory_pairs(params, "auto")) == len(
        secret_memory_pairs(params, "single")
    )
    small = MachineParams(value_bits=1, mem_size=4, n_public=2)
    assert len(secret_memory_pairs(small, "auto")) == len(
        secret_memory_pairs(small, "all")
    )


def test_public_values_override():
    params = MachineParams(value_bits=1, mem_size=4, n_public=2)
    roots = secret_memory_pairs(params, "single", public_values=(1, 1))
    assert all(r.dmem_pair[0][:2] == (1, 1) for r in roots)
    with pytest.raises(ValueError):
        secret_memory_pairs(params, "single", public_values=(1,))


def test_no_secret_region_yields_no_roots():
    params = MachineParams(value_bits=1, mem_size=4, n_public=4)
    assert secret_memory_pairs(params, "all") == []


@given(
    mode=st.sampled_from(["all", "single"]),
    value_bits=st.integers(1, 2),
    n_public=st.integers(0, 3),
)
def test_pairs_always_differ_and_share_public(mode, value_bits, n_public):
    params = MachineParams(
        value_bits=value_bits, mem_size=4, n_public=n_public
    )
    for root in secret_memory_pairs(params, mode):
        left, right = root.dmem_pair
        assert left != right
        assert left[:n_public] == right[:n_public]
        assert all(0 <= v < params.value_domain for v in left + right)


def test_assumption_excludes_matching_events():
    assumption = no_misaligned_accesses()
    assert assumption.excludes(("misaligned",))
    assert assumption.excludes(("mispredict", "misaligned"))
    assert not assumption.excludes(("mispredict",))
    assert not assumption.excludes(())


def test_assumption_names_are_distinct():
    names = {
        a.name
        for a in (
            no_misaligned_accesses(),
            no_illegal_accesses(),
            no_mispredicted_branches(),
        )
    }
    assert len(names) == 3
