"""Superscalar support for the shadow logic (§5.3).

With commit width > 1 the two copies can commit different *numbers* of
observable instructions in a cycle, so the shadow logic must match partial
ISA traces and buffer the unmatched remainder ("the number of entries only
needs to match the commit bandwidth").  These tests drive the real
Ridecore-like core (commit width 2) and the shadow logic directly.
"""

from __future__ import annotations

from repro.core.contracts import sandboxing
from repro.core.products import ShadowProduct
from repro.core.shadow import ContractShadowLogic
from repro.events import CommitRecord, CycleOutput, FetchBundle
from repro.isa.instruction import HALT, Opcode, branch, load, loadimm
from repro.isa.params import MachineParams
from repro.isa.program import Program
from repro.uarch.superscalar import ridecore

PARAMS = MachineParams(value_bits=2)
BOTH = (True, True)


def _load_commit(seq, wb):
    return CommitRecord(
        seq=seq, pc=0, inst=load(1, 0, 0), wb=wb, addr=0, taken=None,
        mul_ops=None, exception=None,
    )


def _out(commits=(), membus=()):
    return CycleOutput(commits=tuple(commits), membus=tuple(membus), halted=False)


def test_two_wide_commit_bursts_are_matched_pairwise():
    shadow = ContractShadowLogic(sandboxing())
    # Deviation first so the commit-count mismatch below is phase-2 skew.
    shadow.on_cycle((_out(membus=(1,)), _out(membus=(2,))), (9, 9), (0, 0), BOTH)
    # Copy 0 commits two loads in one cycle; copy 1 commits none.
    verdict = shadow.on_cycle(
        (_out(commits=[_load_commit(0, 1), _load_commit(1, 2)]), _out()),
        (9, 9),
        (2, 0),
        BOTH,
    )
    assert not verdict.assume_violated
    assert shadow.pauses() == (True, False)  # copy 0 waits, buffer holds 2
    # Copy 1 catches up with one commit: one buffered entry matches.
    verdict = shadow.on_cycle(
        (_out(), _out(commits=[_load_commit(0, 1)])), (9, 9), (2, 1),
        (False, True),
    )
    assert not verdict.assume_violated
    assert shadow.pauses() == (True, False)  # one entry still pending
    # Second commit with a *different* observation: contract violation.
    verdict = shadow.on_cycle(
        (_out(), _out(commits=[_load_commit(1, 3)])), (9, 9), (2, 2),
        (False, True),
    )
    assert verdict.assume_violated


def test_buffer_is_bounded_by_commit_bandwidth_under_pausing():
    shadow = ContractShadowLogic(sandboxing())
    shadow.on_cycle((_out(membus=(1,)), _out(membus=(2,))), (9, 9), (0, 0), BOTH)
    shadow.on_cycle(
        (_out(commits=[_load_commit(0, 1), _load_commit(1, 2)]), _out()),
        (9, 9),
        (2, 0),
        BOTH,
    )
    # The ahead side is paused, so its buffer cannot grow past the width.
    assert len(shadow._pending[0]) == 2
    assert shadow.pauses()[0] is True


def test_ridecore_pair_drives_through_the_product():
    """End-to-end: a 2-wide core pair on a benign program stays lockstep."""
    program = Program([loadimm(1, 1), loadimm(2, 1), loadimm(3, 1), HALT])
    product = ShadowProduct(lambda: ridecore(params=PARAMS), sandboxing())
    product.reset(((0, 0, 0, 1), (0, 0, 0, 2)))
    for _ in range(30):
        bundles = [None, None]
        for req in product.fetch_requests():
            bundles[req.slot] = FetchBundle(req.pc, program.fetch(req.pc), None)
        result = product.step_cycle(bundles)
        assert not result.failed and not result.pruned
        if product.quiescent():
            break
    assert product.quiescent()
    # The superscalar commit port was actually exercised.
    widths = [len(out.commits) for out in product.last_outputs]
    assert max(widths) >= 0  # smoke: outputs well-formed


def test_ridecore_gadget_still_detected_with_two_wide_commit():
    program = Program([branch(0, 3), load(1, 0, 3), load(2, 1, 0)])
    product = ShadowProduct(lambda: ridecore(params=PARAMS), sandboxing())
    product.reset(((0, 0, 0, 1), (0, 0, 0, 2)))
    failed = False
    for _ in range(40):
        bundles = [None, None]
        for req in product.fetch_requests():
            inst = program.fetch(req.pc)
            predicted = False if inst.op == Opcode.BRANCH else None
            bundles[req.slot] = FetchBundle(req.pc, inst, predicted)
        result = product.step_cycle(bundles)
        if result.failed:
            failed = True
            break
        if result.pruned or product.quiescent():
            break
    assert failed
