"""Property-based tests for the two-phase shadow logic.

Hypothesis drives the shadow logic with arbitrary commit/bus event
sequences and checks its protocol invariants:

- the leakage assertion never fires in phase 1;
- phase transitions are monotonic (once draining, never back to lockstep);
- at most one side is ever paused, and only in phase 2;
- pending observation queues never both stay non-empty after matching;
- snapshot/restore is lossless at any point of any run.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.contracts import sandboxing
from repro.core.shadow import ContractShadowLogic
from repro.events import CommitRecord, CycleOutput
from repro.isa.instruction import load

# An event script drives one side: each element decides (commit?, wb, bus).
side_cycle = st.tuples(
    st.booleans(),
    st.integers(0, 1),
    st.sampled_from([(), (1,), (2,)]),
)
script = st.lists(st.tuples(side_cycle, side_cycle), min_size=1, max_size=12)


def _output(side_plan, seq):
    commits = ()
    has_commit, wb, bus = side_plan
    if has_commit:
        record = CommitRecord(
            seq=seq,
            pc=0,
            inst=load(1, 0, 0),
            wb=wb,
            addr=0,
            taken=None,
            mul_ops=None,
            exception=None,
        )
        commits = (record,)
    return CycleOutput(commits=commits, membus=bus, halted=False)


@settings(max_examples=300, deadline=None)
@given(plan=script)
def test_protocol_invariants_hold_on_arbitrary_event_streams(plan):
    shadow = ContractShadowLogic(sandboxing())
    seqs = [0, 0]
    phases = [shadow.phase]
    for left_plan, right_plan in plan:
        pauses = shadow.pauses()
        assert not (pauses[0] and pauses[1])  # never both paused
        if shadow.phase == ContractShadowLogic.PHASE_LOCKSTEP:
            assert pauses == (False, False)
        outputs = []
        stepped = []
        for side, side_plan in enumerate((left_plan, right_plan)):
            if pauses[side]:
                outputs.append(CycleOutput((), (), False))
                stepped.append(False)
                continue
            outputs.append(_output(side_plan, seqs[side]))
            if side_plan[0]:
                seqs[side] += 1
            stepped.append(True)
        verdict = shadow.on_cycle(
            (outputs[0], outputs[1]),
            (seqs[0], seqs[1]),
            (None, None),  # empty ROBs: drains resolve immediately
            (stepped[0], stepped[1]),
        )
        phases.append(shadow.phase)
        if verdict.assertion_failed:
            assert shadow.phase == ContractShadowLogic.PHASE_DRAIN
            break
        if verdict.assume_violated:
            break
        # After matching, at most one queue is non-empty.
        assert not (shadow._pending[0] and shadow._pending[1])
    assert phases == sorted(phases)  # phase is monotone


@settings(max_examples=150, deadline=None)
@given(plan=script, cut=st.integers(0, 11))
def test_snapshot_restore_is_lossless_mid_protocol(plan, cut):
    shadow = ContractShadowLogic(sandboxing())
    seqs = [0, 0]
    snap = None
    for index, (left_plan, right_plan) in enumerate(plan):
        if index == cut:
            snap = shadow.snapshot((0, 0))
        outputs = (_output(left_plan, seqs[0]), _output(right_plan, seqs[1]))
        seqs[0] += left_plan[0]
        seqs[1] += right_plan[0]
        verdict = shadow.on_cycle(
            outputs, (seqs[0], seqs[1]), (None, None), (True, True)
        )
        if verdict.assume_violated or verdict.assertion_failed:
            break
    if snap is not None:
        clone = ContractShadowLogic(sandboxing())
        clone.restore(snap, (0, 0))
        assert clone.snapshot((0, 0)) == snap
