"""Tests for the contract observation functions."""

from __future__ import annotations

from repro.core.contracts import CONTRACTS, constant_time, sandboxing
from repro.events import CommitRecord
from repro.isa.instruction import HALT, alu, branch, lh, load, loadimm, mul


def _record(inst, wb=None, addr=None, taken=None, mul_ops=None, exception=None):
    return CommitRecord(
        seq=0, pc=0, inst=inst, wb=wb, addr=addr, taken=taken,
        mul_ops=mul_ops, exception=exception,
    )


def test_sandboxing_observes_load_writebacks():
    contract = sandboxing()
    assert contract.isa_obs(_record(load(1, 0, 3), wb=2, addr=3)) == ("load", 2)
    assert contract.isa_obs(_record(lh(1, 0, 4), wb=1, addr=4)) == ("load", 1)


def test_sandboxing_ignores_non_loads():
    contract = sandboxing()
    assert contract.isa_obs(_record(alu(1, 1, 2), wb=3)) is None
    assert contract.isa_obs(_record(branch(0, 2), taken=True)) is None
    assert contract.isa_obs(_record(loadimm(1, 2), wb=2)) is None
    assert contract.isa_obs(_record(HALT)) is None
    assert contract.isa_obs(_record(mul(1, 1, 2), wb=2, mul_ops=(1, 2))) is None


def test_sandboxing_observes_traps():
    contract = sandboxing()
    obs = contract.isa_obs(_record(lh(1, 0, 5), addr=5, exception="misaligned"))
    assert obs == ("exc", "misaligned")


def test_constant_time_observes_addresses_conditions_and_mul_operands():
    contract = constant_time()
    assert contract.isa_obs(_record(load(1, 0, 3), wb=2, addr=3)) == ("addr", 3)
    assert contract.isa_obs(_record(branch(0, 2), taken=True)) == ("branch", True)
    assert contract.isa_obs(_record(mul(1, 1, 2), wb=2, mul_ops=(1, 2))) == (
        "mul",
        (1, 2),
    )


def test_constant_time_does_not_observe_load_data():
    """Secrets may flow into registers under constant-time."""
    contract = constant_time()
    obs_a = contract.isa_obs(_record(load(1, 0, 3), wb=1, addr=3))
    obs_b = contract.isa_obs(_record(load(1, 0, 3), wb=2, addr=3))
    assert obs_a == obs_b  # same address, different data: indistinguishable


def test_constant_time_trap_includes_the_faulting_address():
    contract = constant_time()
    obs = contract.isa_obs(_record(lh(1, 0, 5), addr=5, exception="misaligned"))
    assert obs == ("exc", "misaligned", 5)


def test_contract_registry():
    assert set(CONTRACTS) == {"sandboxing", "constant-time"}
    assert CONTRACTS["sandboxing"]().name == "sandboxing"
