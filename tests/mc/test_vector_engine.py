"""Unit coverage for the vector engine's numpy substrate.

Three layers, matching :mod:`repro.mc.vector`'s structure:

- the packed blob really is numpy-consumable: ``np.frombuffer(blob,
  dtype='<i8')`` recovers the exact word array for every
  ``packed_capable`` core configuration (the :mod:`repro.mc.packed`
  docstring's promise, exercised here rather than trusted);
- the fingerprint scheme: the vectorized batch fingerprint replicates
  CPython's tuple hash lane-for-lane, including the sign/overflow edge
  cases the replication folds by hand;
- :class:`repro.mc.vector.VectorVisited` / ``FrontierArena``: randomized
  insert/probe cross-checked against a Python ``set``, forced fingerprint
  collisions, growth across several doublings, and the lossy-drop
  counter when the table is capacity-pinned.

The search-level contract (bit-identical verdicts/stats) lives in
``test_engine_equivalence.py``; this file owns the data structures.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.contracts import sandboxing
from repro.core.products import ShadowProduct
from repro.events import FetchBundle
from repro.isa.instruction import HALT, Opcode
from repro.isa.params import MachineParams
from repro.mc.packed import PackedCodec, decode_word, encode_word
from repro.mc.vector import (
    FrontierArena,
    VectorVisited,
    fingerprint_row,
    fingerprint_rows,
)
from repro.uarch.config import CacheConfig, Defense
from repro.uarch.simple_ooo import simple_ooo

from test_snapshot_roundtrip import DMEM_PAIR, PARAMS, PROGRAM, _fetch


# ---------------------------------------------------------------------------
# Packed blobs are numpy-consumable (the docstring claim)
# ---------------------------------------------------------------------------
_CACHE = CacheConfig(n_sets=1, block_words=2, hit_latency=1, miss_latency=3)

_CORE_CONFIGS = {
    "insecure": lambda: simple_ooo(Defense.NONE, params=PARAMS),
    "delay-spectre": lambda: simple_ooo(Defense.DELAY_SPECTRE, params=PARAMS),
    "dom-cache": lambda: simple_ooo(
        Defense.DOM_SPECTRE, params=PARAMS, cache=_CACHE
    ),
}


@pytest.mark.parametrize("config", sorted(_CORE_CONFIGS))
def test_packed_blob_is_numpy_consumable(config):
    """``np.frombuffer(blob, dtype='<i8')`` recovers the exact words the
    core emitted, on every reachable snapshot of a driven product."""
    product = ShadowProduct(_CORE_CONFIGS[config], sandboxing())
    assert product.packed_capable
    codec = PackedCodec(product)
    product.reset(DMEM_PAIR)
    for cycle in range(12):
        blob = codec.snapshot()
        words = []
        product.snapshot_words(words, codec.atoms)
        arr = np.frombuffer(blob, dtype="<i8")
        assert arr.tolist() == words, f"{config} cycle {cycle}"
        # Every word decodes against the codec's atom table and
        # re-encodes to itself (tag round-trip; bools legitimately
        # re-encode as their 0/1 scalar).
        for word in words:
            value = decode_word(word, codec.atoms.values)
            assert encode_word(value, codec.atoms) == (
                (1 if value else 0) << 2 if isinstance(value, bool) else word
            )
        # And the blob restores to a snapshot fixpoint.
        codec.restore(blob)
        assert codec.snapshot() == blob
        requests = product.fetch_requests()
        bundles = [None] * len(product.machines)
        for req in requests:
            bundles[req.slot] = _fetch(PROGRAM, req.pc, predicted=True)
        result = product.step_cycle(bundles)
        if result.failed or result.pruned or product.quiescent():
            break


# ---------------------------------------------------------------------------
# Fingerprints: the vectorized tuple-hash replication
# ---------------------------------------------------------------------------
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1
_EDGES = (
    0, 1, -1, 2, -2,
    (1 << 61) - 2, (1 << 61) - 1, 1 << 61, (1 << 61) + 1,
    -((1 << 61) - 1), -(1 << 61),
    INT64_MAX, INT64_MIN, INT64_MIN + 1,
)


def test_batch_fingerprint_matches_scalar_on_edge_values():
    rows = [
        (edge, 0, -edge if edge != INT64_MIN else edge, 7, edge)
        for edge in _EDGES
    ]
    batch = fingerprint_rows(np.array(rows, dtype=np.int64))
    for row, fp in zip(rows, batch):
        assert int(fp) == fingerprint_row(row), row


def test_batch_fingerprint_matches_scalar_randomized():
    rng = random.Random(0xC0FFEE)
    rows = [
        tuple(
            rng.choice(
                (rng.randrange(-8, 8), rng.randrange(INT64_MIN, INT64_MAX))
            )
            for _ in range(5)
        )
        for _ in range(2000)
    ]
    batch = fingerprint_rows(np.array(rows, dtype=np.int64))
    for row, fp in zip(rows, batch):
        assert int(fp) == fingerprint_row(row), row


# ---------------------------------------------------------------------------
# VectorVisited
# ---------------------------------------------------------------------------
def _visited(width=5, capacity=16, max_capacity=None):
    arena = FrontierArena()
    return VectorVisited(
        width=width, arena=arena, capacity=capacity, max_capacity=max_capacity
    )


def test_visited_randomized_against_python_set():
    """Insert/probe agreement with a plain set across several growth
    doublings, interleaving scalar adds with batch probes."""
    visited = _visited()
    model: set[tuple] = set()
    rng = random.Random(42)
    universe = [
        tuple(rng.randrange(-64, 64) for _ in range(5)) for _ in range(4000)
    ]
    for step in range(12000):
        row = universe[rng.randrange(len(universe))]
        fp = visited.fingerprint(row)
        assert visited.contains(row, fp) == (row in model)
        assert visited.add(row, fp) == (row not in model)
        model.add(row)
        if step % 1024 == 0:
            batch = [
                universe[rng.randrange(len(universe))] for _ in range(64)
            ]
            rows = np.array(batch, dtype=np.int64)
            hits = visited.contains_batch(
                rows, visited.fingerprint_batch(rows)
            )
            for row, hit in zip(batch, hits):
                assert bool(hit) == (row in model), row
    assert visited.count == len(model)
    assert visited.dropped == 0


def test_visited_forced_fingerprint_collision():
    """Distinct rows sharing a fingerprint still resolve exactly (the
    stored-row confirm), scalar and batch alike."""
    visited = _visited(width=2)
    a, b, c = (1, 2), (3, 4), (5, 6)
    fp = visited.fingerprint(a)
    assert visited.add(a, fp)
    assert not visited.add(a, fp)
    # b inserted under a's fingerprint: a forced collision chain.
    assert visited.add(b, fp)
    assert visited.contains(a, fp) and visited.contains(b, fp)
    assert not visited.contains(c, fp)
    rows = np.array([a, b, c], dtype=np.int64)
    hits = visited.contains_batch(rows, np.full(3, fp, dtype=np.uint64))
    assert hits.tolist() == [True, True, False]


def test_visited_growth_preserves_membership():
    visited = _visited(capacity=16)
    rows = [(i, i * 3, -i, i & 7, 11) for i in range(5000)]
    for row in rows:
        assert visited.add(row, visited.fingerprint(row))
    assert visited.count == len(rows)
    # Table grew well past the seed capacity; everything still probes.
    for row in rows:
        assert visited.contains(row, visited.fingerprint(row))
    arr = np.array(rows, dtype=np.int64)
    assert visited.contains_batch(arr, visited.fingerprint_batch(arr)).all()


def test_visited_pinned_capacity_counts_drops():
    """A capacity-pinned table degrades to lossy (like the shared
    filter's full window) and counts what it dropped."""
    visited = _visited(capacity=8, max_capacity=8)
    inserted = 0
    for i in range(64):
        row = (i, i + 1, i + 2, i + 3, i + 4)
        if visited.add(row, visited.fingerprint(row)):
            inserted += 1
    assert inserted == 64  # adds still report first-visit
    assert visited.dropped > 0
    assert visited.count + visited.dropped == 64
    assert visited.count <= 8


# ---------------------------------------------------------------------------
# FrontierArena
# ---------------------------------------------------------------------------
def test_arena_append_extend_and_rows():
    arena = FrontierArena()
    width, index = arena.append((1, 2, 3))
    assert (width, index) == (3, 0)
    assert arena.row(3, 0).tolist() == [1, 2, 3]
    block = np.arange(12, dtype=np.int64).reshape(4, 3)
    start = arena.extend(3, block)
    assert start == 1
    assert arena.count(3) == 5
    assert arena.rows(3)[1:].tolist() == block.tolist()
    # A different width lives in its own bucket.
    arena.append((9, 9, 9, 9))
    assert arena.count(4) == 1 and arena.count(3) == 5
    assert arena.nbytes > 0


def test_arena_dedup_last_keeps_final_occurrence():
    rows = np.array(
        [(1, 2), (3, 4), (1, 2), (5, 6), (3, 4)], dtype=np.int64
    )
    keep = FrontierArena.dedup_last(rows)
    assert keep.tolist() == [False, False, True, True, True]
