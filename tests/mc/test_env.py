"""Tests for the symbolic environment."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.isa.instruction import HALT, load, loadimm
from repro.mc.env import Environment


def test_empty_environment_is_fully_symbolic():
    env = Environment.empty(3)
    assert env.imem == (None, None, None)
    assert env.slot(0) is None
    assert env.slot(3) == HALT  # out of range = implicit HALT
    assert env.slot(-1) == HALT


def test_with_slots_is_persistent():
    env = Environment.empty(3)
    env2 = env.with_slots({1: loadimm(1, 2)})
    assert env.slot(1) is None
    assert env2.slot(1) == loadimm(1, 2)


def test_predictions_are_shared_by_key():
    env = Environment.empty(2).with_predictions({(0, 0): True, (0, 1): False})
    assert env.prediction((0, 0)) is True
    assert env.prediction((0, 1)) is False
    assert env.prediction((1, 0)) is None


def test_program_fills_unfetched_slots_with_halt():
    env = Environment.empty(3).with_slots({0: load(1, 0, 3)})
    program = env.program()
    assert program.instructions == (load(1, 0, 3), HALT, HALT)


def test_environments_hash_and_compare_structurally():
    env_a = Environment.empty(2).with_slots({0: HALT}).with_predictions({(0, 0): True})
    env_b = Environment.empty(2).with_slots({0: HALT}).with_predictions({(0, 0): True})
    assert env_a == env_b and hash(env_a) == hash(env_b)


@given(
    slots=st.dictionaries(st.integers(0, 3), st.sampled_from([HALT, loadimm(1, 1)])),
    preds=st.dictionaries(
        st.tuples(st.integers(0, 3), st.integers(0, 2)), st.booleans()
    ),
)
def test_extension_order_does_not_matter(slots, preds):
    env = Environment.empty(4)
    one = env.with_slots(slots).with_predictions(preds)
    two = env.with_predictions(preds).with_slots(slots)
    assert one == two
