"""Tests for the explicit-state search engine on small, known workloads."""

from __future__ import annotations

import pytest

from repro.core.contracts import sandboxing
from repro.core.secrets import secret_memory_pairs
from repro.core.verifier import VerificationTask, verify
from repro.isa.encoding import EncodingSpace
from repro.isa.params import MachineParams
from repro.mc.explorer import SearchLimits
from repro.uarch.config import Defense
from repro.uarch.simple_ooo import simple_ooo

PARAMS = MachineParams(imem_size=3)

TINY = EncodingSpace(
    load_rd=(1, 2),
    load_rs=(0, 1),
    load_imm=(0, 3),
    branch_rs=(0,),
    branch_off=(2,),
)


def _task(defense, **overrides):
    base = dict(
        core_factory=lambda: simple_ooo(defense, params=PARAMS),
        contract=sandboxing(),
        space=TINY,
        limits=SearchLimits(timeout_s=90),
    )
    base.update(overrides)
    return VerificationTask(**base)


def test_attack_found_on_insecure_core():
    outcome = verify(_task(Defense.NONE))
    assert outcome.attacked
    assert outcome.counterexample is not None
    assert outcome.stats.states > 0


def test_counterexample_program_contains_a_branch_and_loads():
    outcome = verify(_task(Defense.NONE))
    ops = {inst.op.name for inst in outcome.counterexample.program}
    assert "BRANCH" in ops and "LOAD" in ops


def test_proof_on_secure_core_visits_whole_space():
    outcome = verify(_task(Defense.DELAY_FUTURISTIC))
    assert outcome.proved
    assert outcome.stats.pruned > 0  # contract-invalid programs were pruned


def test_timeout_is_reported():
    outcome = verify(_task(Defense.DELAY_FUTURISTIC, limits=SearchLimits(timeout_s=0)))
    assert outcome.timed_out


def test_max_states_cap_reports_timeout():
    outcome = verify(
        _task(Defense.DELAY_FUTURISTIC, limits=SearchLimits(max_states=100))
    )
    assert outcome.timed_out
    assert outcome.stats.states <= 101


def test_explicit_roots_restrict_the_quantifier():
    # The tiny space only addresses secret cell 3 (imm 0/3), so pin the
    # root that varies cell 3; the other cell's root proves instead.
    roots = [secret_memory_pairs(PARAMS, "single")[-1]]
    outcome = verify(_task(Defense.NONE, roots=roots))
    assert outcome.attacked
    assert outcome.counterexample.root_label == roots[0].label
    unreachable = [secret_memory_pairs(PARAMS, "single")[0]]
    assert verify(_task(Defense.NONE, roots=unreachable)).proved


def test_baseline_and_shadow_schemes_agree_on_verdicts():
    """Both schemes check Eq. (1); verdicts must coincide."""
    for defense in (Defense.NONE, Defense.DELAY_FUTURISTIC):
        shadow = verify(_task(defense, scheme="shadow"))
        baseline = verify(_task(defense, scheme="baseline"))
        assert shadow.kind == baseline.kind, defense


def test_proofs_are_deterministic():
    first = verify(_task(Defense.DELAY_FUTURISTIC))
    second = verify(_task(Defense.DELAY_FUTURISTIC))
    assert first.kind == second.kind
    assert first.stats.states == second.stats.states
    assert first.stats.transitions == second.stats.transitions


def test_every_root_is_searched_with_its_own_memories():
    """Regression: memories are not in snapshots, so crossing into another
    root's subtree must re-install that root's memories.  Put the only
    attackable root first (it is explored *last* by the LIFO stack) and a
    benign root last."""
    attackable = secret_memory_pairs(PARAMS, "single")[-1]  # varies cell 3
    benign = secret_memory_pairs(PARAMS, "single")[0]  # cell 2: unreachable
    outcome = verify(_task(Defense.NONE, roots=[attackable, benign]))
    assert outcome.attacked
    assert outcome.counterexample.root_label == attackable.label
    # The replayed attack must actually use the attackable memories.
    from repro.mc.replay import replay

    task = _task(Defense.NONE, roots=[attackable, benign])
    trace = replay(task.build_product(), outcome.counterexample)
    assert trace[-1].result.failed


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        verify(_task(Defense.NONE, scheme="nonsense"))
