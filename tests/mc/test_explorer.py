"""Tests for the explicit-state search engine on small, known workloads."""

from __future__ import annotations

import pytest

import time

from repro.core.contracts import sandboxing
from repro.core.products import FetchRequest, StepResult
from repro.core.secrets import secret_memory_pairs
from repro.core.verifier import VerificationTask, verify
from repro.isa.encoding import EncodingSpace
from repro.isa.instruction import HALT
from repro.isa.params import MachineParams
from repro.mc.env import Environment
from repro.mc.explorer import (
    Explorer,
    FrontierEntry,
    Root,
    SearchLimits,
)
from repro.mc.result import PROVED, SearchStats
from repro.uarch.config import Defense
from repro.uarch.simple_ooo import simple_ooo

PARAMS = MachineParams(imem_size=3)

TINY = EncodingSpace(
    load_rd=(1, 2),
    load_rs=(0, 1),
    load_imm=(0, 3),
    branch_rs=(0,),
    branch_off=(2,),
)


def _task(defense, **overrides):
    base = dict(
        core_factory=lambda: simple_ooo(defense, params=PARAMS),
        contract=sandboxing(),
        space=TINY,
        limits=SearchLimits(timeout_s=90),
    )
    base.update(overrides)
    return VerificationTask(**base)


def test_attack_found_on_insecure_core():
    outcome = verify(_task(Defense.NONE))
    assert outcome.attacked
    assert outcome.counterexample is not None
    assert outcome.stats.states > 0


def test_counterexample_program_contains_a_branch_and_loads():
    outcome = verify(_task(Defense.NONE))
    ops = {inst.op.name for inst in outcome.counterexample.program}
    assert "BRANCH" in ops and "LOAD" in ops


def test_proof_on_secure_core_visits_whole_space():
    outcome = verify(_task(Defense.DELAY_FUTURISTIC))
    assert outcome.proved
    assert outcome.stats.pruned > 0  # contract-invalid programs were pruned


def test_timeout_is_reported():
    outcome = verify(_task(Defense.DELAY_FUTURISTIC, limits=SearchLimits(timeout_s=0)))
    assert outcome.timed_out


def test_max_states_cap_reports_timeout():
    outcome = verify(
        _task(Defense.DELAY_FUTURISTIC, limits=SearchLimits(max_states=100))
    )
    assert outcome.timed_out
    assert outcome.stats.states <= 101


def test_explicit_roots_restrict_the_quantifier():
    # The tiny space only addresses secret cell 3 (imm 0/3), so pin the
    # root that varies cell 3; the other cell's root proves instead.
    roots = [secret_memory_pairs(PARAMS, "single")[-1]]
    outcome = verify(_task(Defense.NONE, roots=roots))
    assert outcome.attacked
    assert outcome.counterexample.root_label == roots[0].label
    unreachable = [secret_memory_pairs(PARAMS, "single")[0]]
    assert verify(_task(Defense.NONE, roots=unreachable)).proved


def test_baseline_and_shadow_schemes_agree_on_verdicts():
    """Both schemes check Eq. (1); verdicts must coincide."""
    for defense in (Defense.NONE, Defense.DELAY_FUTURISTIC):
        shadow = verify(_task(defense, scheme="shadow"))
        baseline = verify(_task(defense, scheme="baseline"))
        assert shadow.kind == baseline.kind, defense


def test_proofs_are_deterministic():
    first = verify(_task(Defense.DELAY_FUTURISTIC))
    second = verify(_task(Defense.DELAY_FUTURISTIC))
    assert first.kind == second.kind
    assert first.stats.states == second.stats.states
    assert first.stats.transitions == second.stats.transitions


def test_every_root_is_searched_with_its_own_memories():
    """Regression: memories are not in snapshots, so crossing into another
    root's subtree must re-install that root's memories.  Put the only
    attackable root first (it is explored *last* by the LIFO stack) and a
    benign root last."""
    attackable = secret_memory_pairs(PARAMS, "single")[-1]  # varies cell 3
    benign = secret_memory_pairs(PARAMS, "single")[0]  # cell 2: unreachable
    outcome = verify(_task(Defense.NONE, roots=[attackable, benign]))
    assert outcome.attacked
    assert outcome.counterexample.root_label == attackable.label
    # The replayed attack must actually use the attackable memories.
    from repro.mc.replay import replay

    task = _task(Defense.NONE, roots=[attackable, benign])
    trace = replay(task.build_product(), outcome.counterexample)
    assert trace[-1].result.failed


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        verify(_task(Defense.NONE, scheme="nonsense"))


def test_expired_deadline_stops_at_the_first_expansion():
    """Regression: the absolute campaign deadline must be checked on every
    expansion.  The strided check let a shard run ``_CLOCK_STRIDE`` (128)
    expansions past a long-expired deadline per tick window."""
    roots = [secret_memory_pairs(PARAMS, "single")[0]]  # a proof subtree
    limits = SearchLimits(deadline=time.monotonic() - 1.0)
    outcome = verify(_task(Defense.NONE, roots=roots, limits=limits))
    assert outcome.timed_out
    assert outcome.stats.states == 1


def test_relative_timeout_keeps_the_strided_check():
    """`timeout_s` is per-task, not shared: overrunning it by a tick
    window is benign, so an expired relative budget is only noticed at
    the first stride boundary."""
    roots = [secret_memory_pairs(PARAMS, "single")[0]]
    outcome = verify(
        _task(Defense.NONE, roots=roots, limits=SearchLimits(timeout_s=0.0))
    )
    assert outcome.timed_out
    assert outcome.stats.states > 1


def test_expand_root_plus_seeded_shards_reproduce_serial():
    """Sub-root independence at the engine level: first-cycle expansion +
    one seeded search per child, merged in serial LIFO order, is
    bit-identical to the monolithic search of the same root."""
    for root in (
        secret_memory_pairs(PARAMS, "single")[-1],  # attackable subtree
        secret_memory_pairs(PARAMS, "single")[0],  # proof subtree
    ):
        task = _task(Defense.NONE, roots=[root])
        serial = verify(task)
        expansion = Explorer(
            task.build_product(), task.space, [root], task.limits
        ).expand_root()
        assert expansion.decided is None
        assert expansion.splittable
        outcomes = [
            Explorer(
                task.build_product(), task.space, [root], task.limits
            ).run_seeded([entry])
            for entry in expansion.entries
        ]
        # Serial LIFO merge: prelude + children from last yielded to first,
        # first non-proof decides.
        stats = expansion.stats
        states, transitions = stats.states, stats.transitions
        pruned, max_depth = stats.pruned, stats.max_depth
        reasons = dict(stats.prune_reasons)
        decided = None
        for outcome in reversed(outcomes):
            sub = outcome.stats
            states += sub.states
            transitions += sub.transitions
            pruned += sub.pruned
            max_depth = max(max_depth, sub.max_depth)
            for reason, count in sub.prune_reasons.items():
                reasons[reason] = reasons.get(reason, 0) + count
            if outcome.kind != PROVED:
                decided = outcome
                break
        merged = SearchStats(states, transitions, pruned, max_depth, reasons)
        assert (decided.kind if decided else PROVED) == serial.kind
        assert merged == serial.stats
        assert (
            decided.counterexample if decided else None
        ) == serial.counterexample


def test_run_seeded_requires_a_single_root():
    roots = secret_memory_pairs(PARAMS, "single")
    task = _task(Defense.NONE)
    explorer = Explorer(task.build_product(), task.space, roots, task.limits)
    with pytest.raises(ValueError):
        explorer.run_seeded([])


class _ScriptedFetchProduct:
    """Minimal product: one machine fetching a scripted PC per cycle."""

    def __init__(self, pcs: tuple[int, ...], imem_size: int = 3):
        self.params = MachineParams(imem_size=imem_size)
        self.machines = [object()]
        self._pcs = pcs
        self._cycle = 0
        self.bundles_seen: list = []

    def reset(self, dmem_pair) -> None:
        self._cycle = 0

    def fetch_requests(self):
        if self._cycle >= len(self._pcs):
            return []
        return [
            FetchRequest(
                slot=0,
                pc=self._pcs[self._cycle],
                occurrence=0,
                predictor="nondet",
            )
        ]

    def step_cycle(self, bundles):
        self.bundles_seen.append(bundles[0])
        self._cycle += 1
        return StepResult(pruned=False, failed=False, reason=None)

    def quiescent(self) -> bool:
        return self._cycle >= len(self._pcs)

    def snapshot(self) -> tuple:
        return (self._cycle,)

    def restore(self, snap: tuple) -> None:
        (self._cycle,) = snap


def test_wrapped_fetch_pcs_read_as_halt():
    """Regression: a wrapped/overflowed fetch PC (mispredicted fetch) must
    fetch ``HALT`` like running off the program, not crash the search."""
    product = _ScriptedFetchProduct(pcs=(-5, 2**32))
    explorer = Explorer(
        product, TINY, [Root(label="r", dmem_pair=((), ()))], SearchLimits()
    )
    outcome = explorer.run()
    assert outcome.proved
    assert [b.inst for b in product.bundles_seen] == [HALT, HALT]
    assert all(b.predicted_taken is None for b in product.bundles_seen)


def test_seeded_env_smaller_than_imem_reads_as_halt():
    """Regression: a frontier environment modeling a smaller instruction
    memory than the product's parameters must not index out of range --
    the unmodeled slots read as ``HALT``."""
    product = _ScriptedFetchProduct(pcs=(2,), imem_size=3)
    explorer = Explorer(
        product, TINY, [Root(label="r", dmem_pair=((), ()))], SearchLimits()
    )
    entry = FrontierEntry(env=Environment.empty(1), snap=(0,), depth=0)
    outcome = explorer.run_seeded([entry])
    assert outcome.proved
    assert [b.inst for b in product.bundles_seen] == [HALT]
