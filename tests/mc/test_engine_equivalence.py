"""Old-vs-new state-engine equivalence over real benchmark grid slices.

The overhauled explorer (interned snapshots, restore discipline, cached
environment hashes) must be *bit-identical* to the frozen pre-overhaul
engine (:mod:`repro.mc.legacy`) in default mode: same verdicts, same
counterexamples, same ``SearchStats`` -- over representative slices of
every campaign-backed experiment (fig2 sweeps, the fetch-gate ablation,
the Table-2 scheme grid).  This is the contract that lets every committed
benchmark number and every logged campaign record keep its meaning across
the engine swap.
"""

from __future__ import annotations

import pytest

from repro.bench import ablation, fig2, table2
from repro.bench.configs import QUICK
from repro.mc.legacy import verify_legacy
from repro.core.verifier import verify


def _fig2_mini_units():
    return fig2.units(QUICK, regfile_sizes=(2,), dmem_sizes=(2,), rob_sizes=(2, 4))


def _ablation_mini_units():
    return ablation.units(QUICK, workloads=ablation.WORKLOADS[:2])


def _table2_units():
    return table2.units(QUICK)


SLICES = {
    "fig2-mini": _fig2_mini_units,
    "ablation-mini": _ablation_mini_units,
    "table2-grid": _table2_units,
}


ENGINES = ("object", "packed", "vector")


@pytest.mark.parametrize("slice_name", sorted(SLICES))
def test_new_engine_matches_legacy_bit_for_bit(slice_name, monkeypatch):
    """All three state engines (object tuples, packed word arrays, the
    numpy vector engine) must reproduce the legacy search bit for bit,
    on every slice."""
    units = SLICES[slice_name]()
    assert units, slice_name
    for unit in units:
        old = verify_legacy(unit.task)
        for engine in ENGINES:
            monkeypatch.setenv("REPRO_MC_ENGINE", engine)
            new = verify(unit.task)
            label = f"{slice_name}:{'/'.join(unit.key)}:{engine}"
            assert new.kind == old.kind, label
            assert new.stats == old.stats, label
            assert new.counterexample == old.counterexample, label


def test_engine_selection_follows_capability(monkeypatch):
    """Auto-selection engages each engine exactly where the capability
    flags say: shadow products of OoO cores take the vector engine (when
    numpy is importable; the packed engine otherwise), the four-machine
    baseline and shared-visited searches fall back to the object
    engine."""
    from repro.mc import packed
    from repro.mc.explorer import Explorer
    from repro.mc.packed import numpy_available

    monkeypatch.delenv("REPRO_MC_ENGINE", raising=False)
    engines = set()
    for unit in table2.units(QUICK):
        task = unit.task
        product = task.build_product()
        explorer = Explorer(
            product, task.space, task.build_roots(), task.limits,
            shared_visited=task.shared_visited,
        )
        if not getattr(product, "packed_capable", False):
            expected = "object"
        elif numpy_available() and getattr(product, "vector_capable", False):
            expected = "vector"
        else:
            expected = "packed"
        assert explorer.engine == expected, unit.key
        engines.add(explorer.engine)
        shared = Explorer(
            product, task.space, task.build_roots(), task.limits,
            shared_visited=True,
        )
        assert shared.engine == "object", unit.key
    # The grid exercises both sides of the capability split.
    expected_engines = {"object", "vector" if numpy_available() else "packed"}
    assert engines == expected_engines

    # Without numpy the vector request degrades to the packed engine --
    # simulated by blanking the cached availability probe, so this holds
    # on numpy-equipped CI hosts too.
    monkeypatch.setattr(packed, "_numpy_present", False)
    unit = next(
        u for u in table2.units(QUICK)
        if getattr(u.task.build_product(), "packed_capable", False)
    )
    task = unit.task
    degraded = Explorer(
        task.build_product(), task.space, task.build_roots(), task.limits
    )
    assert degraded.engine == "packed"
    monkeypatch.setenv("REPRO_MC_ENGINE", "vector")
    degraded = Explorer(
        task.build_product(), task.space, task.build_roots(), task.limits
    )
    assert degraded.engine == "packed"


@pytest.mark.parametrize("engine", ENGINES)
def test_seeded_shards_match_legacy_monolith(engine, monkeypatch):
    """Sub-root expansion + seeded shards of each engine, merged in
    serial LIFO order, still reproduce the legacy monolithic search on a
    single-root fig2 cell (the sub-root scheduler's workload)."""
    from repro.campaign.scheduler import _merge_serial, _prepend_prelude
    from repro.mc.explorer import Explorer

    monkeypatch.setenv("REPRO_MC_ENGINE", engine)
    task = fig2.point_task(fig2.PANELS[0], "rob", 2, QUICK)
    [root] = task.build_roots()[-1:]
    task.roots = [root]
    legacy = verify_legacy(task)
    expansion = Explorer(
        task.build_product(), task.space, [root], task.limits
    ).expand_root()
    assert expansion.decided is None
    outcomes = [
        Explorer(
            task.build_product(), task.space, [root], task.limits
        ).run_seeded([entry])
        for entry in expansion.entries
    ]
    merged = _prepend_prelude(expansion, _merge_serial(outcomes))
    assert merged.kind == legacy.kind
    assert merged.stats == legacy.stats
    assert merged.counterexample == legacy.counterexample
