"""Counterexample replay: every found attack must re-execute exactly."""

from __future__ import annotations

import pytest

from repro.core.contracts import constant_time, sandboxing
from repro.core.verifier import VerificationTask, verify
from repro.isa.encoding import space_boom, space_tiny
from repro.isa.params import MachineParams
from repro.mc.explorer import SearchLimits
from repro.mc.replay import format_trace, replay
from repro.uarch.boom import boom, boom_params
from repro.uarch.config import Defense
from repro.uarch.simple_ooo import simple_ooo

PARAMS = MachineParams(imem_size=3)


def _attack(core_factory, contract, space):
    task = VerificationTask(
        core_factory=core_factory,
        contract=contract,
        space=space,
        limits=SearchLimits(timeout_s=120),
    )
    outcome = verify(task)
    assert outcome.attacked
    return task, outcome


@pytest.mark.parametrize("contract_factory", [sandboxing, constant_time])
def test_simple_ooo_attacks_replay_to_the_assertion(contract_factory):
    task, outcome = _attack(
        lambda: simple_ooo(Defense.NONE, params=PARAMS),
        contract_factory(),
        space_tiny(),
    )
    trace = replay(task.build_product(), outcome.counterexample)
    assert trace[-1].result.failed
    assert len(trace) == outcome.counterexample.depth


def test_boom_attack_replays_and_formats():
    task, outcome = _attack(
        lambda: boom(params=boom_params()), sandboxing(), space_boom()
    )
    trace = replay(task.build_product(), outcome.counterexample)
    text = format_trace(trace)
    assert "LEAKAGE ASSERTION FIRED" in text
    assert "cycle" in text


def test_replayed_membus_differs_across_the_copies():
    """The replayed traces must actually disagree (that is the leak)."""
    task, outcome = _attack(
        lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing(), space_tiny()
    )
    trace = replay(task.build_product(), outcome.counterexample)
    bus = ([], [])
    commits = ([], [])
    for record in trace:
        for side in (0, 1):
            bus[side].extend(record.outputs[side].membus)
            commits[side].extend(record.outputs[side].commits)
    assert bus[0] != bus[1] or len(commits[0]) != len(commits[1])


def test_counterexample_describe_mentions_the_memories():
    _, outcome = _attack(
        lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing(), space_tiny()
    )
    text = outcome.counterexample.describe()
    assert "memories" in text and "program" in text
