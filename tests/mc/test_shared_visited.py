"""Cross-root visited sharing: mirror canonicalization and the filter.

``shared_visited`` must preserve verdict kinds on every workload while
strictly reducing explored states on orientation-symmetric multi-root
units (the ordered Eq. (1) quantifier) -- and the cross-process
:class:`repro.mc.shared_filter.SharedVisitedFilter` must extend the same
sharing across the campaign scheduler's worker processes.
"""

from __future__ import annotations

import pytest

from repro.campaign.registry import core_spec
from repro.campaign.scheduler import verify_sharded
from repro.core.contracts import sandboxing
from repro.core.products import ShadowProduct
from repro.core.secrets import secret_memory_pairs, with_mirrored_roots
from repro.core.verifier import VerificationTask, verify
from repro.isa.encoding import EncodingSpace
from repro.isa.params import MachineParams
from repro.mc.shared_filter import SharedVisitedFilter
from repro.uarch.config import Defense
from repro.uarch.simple_ooo import simple_ooo

PARAMS = MachineParams(imem_size=3)

TINY = EncodingSpace(
    load_rd=(1, 2),
    load_rs=(0, 1),
    load_imm=(0, 3),
    branch_rs=(0,),
    branch_off=(2,),
)


def _task(defense, roots, **overrides):
    base = dict(
        core_factory=core_spec("simple_ooo", defense=defense, params=PARAMS),
        contract=sandboxing(),
        space=TINY,
        roots=roots,
    )
    base.update(overrides)
    from repro.mc.explorer import SearchLimits

    base.setdefault("limits", SearchLimits(timeout_s=90))
    return VerificationTask(**base)


def _ordered_roots():
    return with_mirrored_roots(secret_memory_pairs(PARAMS, "single"))


def test_mirror_snapshot_is_an_involution_and_tracks_swapped_roots():
    """mirror(snapshot of (A,B) run) equals snapshot of the same-input
    (B,A) run, and mirroring twice is the identity."""
    from repro.events import FetchBundle
    from repro.isa.instruction import HALT, load

    program = (load(1, 0, 3), load(2, 1, 0), HALT)
    pair = ((0, 0, 0, 1), (0, 0, 1, 0))

    def run(dmem_pair, cycles=6):
        product = ShadowProduct(
            lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing()
        )
        product.reset(dmem_pair)
        for _ in range(cycles):
            bundles = [None, None]
            for req in product.fetch_requests():
                inst = program[req.pc] if req.pc < len(program) else HALT
                bundles[req.slot] = FetchBundle(req.pc, inst, None)
            product.step_cycle(bundles)
        return product, product.snapshot()

    product, snap_fwd = run(pair)
    _, snap_rev = run((pair[1], pair[0]))
    assert product.mirror_snapshot(snap_fwd) == snap_rev
    assert product.mirror_snapshot(product.mirror_snapshot(snap_fwd)) == snap_fwd


def test_shared_visited_preserves_proof_and_halves_mirrored_roots():
    roots = _ordered_roots()
    default = verify(_task(Defense.DELAY_FUTURISTIC, roots))
    shared = verify(_task(Defense.DELAY_FUTURISTIC, roots, shared_visited=True))
    assert default.kind == shared.kind == "proved"
    # Every mirror root's subtree collapses onto its partner's: exactly
    # half the states (the mirror roots' initial states are themselves
    # mirror images, so they dedupe from the very first pop).
    assert shared.stats.states * 2 == default.stats.states


def test_shared_visited_preserves_attack_verdicts():
    roots = _ordered_roots()
    default = verify(_task(Defense.NONE, roots))
    shared = verify(_task(Defense.NONE, roots, shared_visited=True))
    assert default.kind == shared.kind == "attack"
    assert shared.counterexample is not None


def test_shared_visited_is_identical_on_asymmetric_single_roots():
    """With no mirror pair among the roots there is nothing to share:
    verdict and state count match the default engine exactly."""
    roots = secret_memory_pairs(PARAMS, "single")
    default = verify(_task(Defense.DELAY_FUTURISTIC, roots))
    shared = verify(_task(Defense.DELAY_FUTURISTIC, roots, shared_visited=True))
    assert shared.kind == default.kind
    assert shared.stats.states == default.stats.states


def test_shared_visited_across_worker_processes():
    """The scheduler wires one SharedVisitedFilter across a unit's shards:
    verdict preserved, total states no worse than the unshared serial
    search (mirror subtrees dedupe across processes)."""
    roots = _ordered_roots()
    serial_default = verify(_task(Defense.DELAY_FUTURISTIC, roots))
    shared = verify_sharded(
        _task(Defense.DELAY_FUTURISTIC, roots, shared_visited=True),
        n_workers=2,
        subroot="always",
    )
    assert shared.kind == serial_default.kind == "proved"
    assert shared.stats.states <= serial_default.stats.states


class TestSharedVisitedFilter:
    def test_add_and_contains(self):
        vfilter = SharedVisitedFilter.create(capacity=64)
        try:
            assert 1234 not in vfilter
            vfilter.add(1234)
            assert 1234 in vfilter
            assert 1235 not in vfilter
        finally:
            vfilter.close()
            vfilter.unlink()

    def test_zero_fingerprint_is_remapped_not_lost(self):
        vfilter = SharedVisitedFilter.create(capacity=64)
        try:
            vfilter.add(0)
            assert 0 in vfilter
        finally:
            vfilter.close()
            vfilter.unlink()

    def test_attach_by_name_sees_the_same_entries(self):
        vfilter = SharedVisitedFilter.create(capacity=64)
        try:
            vfilter.add(99)
            other = SharedVisitedFilter.attach(vfilter.name)
            try:
                assert 99 in other
                other.add(100)
                assert 100 in vfilter
            finally:
                other.close()
        finally:
            vfilter.close()
            vfilter.unlink()

    def test_overflow_degrades_to_lossy_not_wrong(self):
        vfilter = SharedVisitedFilter.create(capacity=8)
        try:
            for fingerprint in range(1, 200):
                vfilter.add(fingerprint)
            # Whatever was kept answers truthfully; nothing asserts falsely.
            kept = sum(1 for fp in range(1, 200) if fp in vfilter)
            assert 0 < kept <= 8
            assert 5000 not in vfilter
        finally:
            vfilter.close()
            vfilter.unlink()


def test_ordered_secret_mode_doubles_all_mode():
    params = MachineParams(imem_size=3)
    unordered = secret_memory_pairs(params, "all")
    ordered = secret_memory_pairs(params, "ordered")
    assert len(ordered) == 2 * len(unordered)
    ordered_pairs = {root.dmem_pair for root in ordered}
    for root in unordered:
        first, second = root.dmem_pair
        assert (first, second) in ordered_pairs
        assert (second, first) in ordered_pairs


def test_with_mirrored_roots_swaps_orientation():
    roots = secret_memory_pairs(PARAMS, "single")
    doubled = with_mirrored_roots(roots)
    assert len(doubled) == 2 * len(roots)
    for original, mirror in zip(doubled[::2], doubled[1::2]):
        assert mirror.dmem_pair == (original.dmem_pair[1], original.dmem_pair[0])
        assert mirror.label.endswith("-mirror")


# ----------------------------------------------------------------------
# Post-order insertion and cost-model sizing (the backend-era filter)
# ----------------------------------------------------------------------
def _explorer(task, vfilter):
    from repro.mc.explorer import Explorer

    return Explorer(
        task.build_product(),
        task.space,
        task.build_roots(),
        task.limits,
        shared_visited=True,
        visited_filter=vfilter,
    )


def test_filter_insertion_is_post_order():
    """A search cut off mid-subtree (per-shard ``max_states`` cap) must
    insert *nothing*: only completed subtrees are shareable, so skips are
    independent of the inserting shard's outcome (the soundness note in
    ``repro.mc.shared_filter``)."""
    from repro.mc.explorer import SearchLimits

    roots = secret_memory_pairs(PARAMS, "single")[:1]
    vfilter = SharedVisitedFilter.create(capacity=1 << 14)
    try:
        capped = _task(
            Defense.DELAY_FUTURISTIC,
            roots,
            limits=SearchLimits(timeout_s=90, max_states=25),
        )
        capped_run = _explorer(capped, vfilter).run()
        assert capped_run.timed_out
        # The capped run may insert the few leaf subtrees it *completed*,
        # but never the root or any other in-progress ancestor -- under
        # the old pop-order insertion the root went in on the very first
        # pop and a fresh search would have skipped everything (0 states,
        # leaning on the capped shard's timeout for soundness).
        baseline = verify(_task(Defense.DELAY_FUTURISTIC, roots))
        full_task = _task(Defense.DELAY_FUTURISTIC, roots)
        first_full = _explorer(full_task, vfilter).run()
        assert first_full.proved
        assert first_full.stats.states > 0  # the root was NOT inserted
        # Only completed subtrees (< the cap's state count) are skippable.
        assert (
            first_full.stats.states > baseline.stats.states - capped_run.stats.states
        )
        # The *completed* run inserted every subtree post-order, so a
        # third search skips the root immediately: zero states.
        second_full = _explorer(full_task, vfilter).run()
        assert second_full.proved
        assert second_full.stats.states == 0
    finally:
        vfilter.close()
        vfilter.unlink()


def test_filter_dropped_counter_surfaces_in_stats():
    """An undersized filter degrades to lossy and says so in SearchStats."""
    roots = _ordered_roots()
    vfilter = SharedVisitedFilter.create(capacity=8)  # absurdly small
    try:
        outcome = _explorer(
            _task(Defense.DELAY_FUTURISTIC, roots), vfilter
        ).run()
        assert outcome.proved  # lossy means re-explore, never mis-prove
        assert outcome.stats.filter_dropped > 0
        assert outcome.stats.filter_dropped == vfilter.dropped
    finally:
        vfilter.close()
        vfilter.unlink()


def test_suggest_capacity_clamps_and_scales():
    from repro.mc.shared_filter import (
        MAX_CAPACITY,
        MIN_CAPACITY,
        suggest_capacity,
    )

    assert suggest_capacity(1, 1, 1) == MIN_CAPACITY  # floor
    assert suggest_capacity(100, 50, 10) == MAX_CAPACITY  # ceiling
    mid = suggest_capacity(2, 7, 6)  # the Fig. 2 ROB-8 shape
    assert MIN_CAPACITY < mid < MAX_CAPACITY
    assert mid & (mid - 1) == 0  # power of two
    assert mid >= 2 * 2 * 7**6  # <=50% load at the modeled state count
