"""Snapshot/restore round-trip identity across every snapshot producer.

The state engine's visited closure, restore discipline and hash-consing
all assume that ``snapshot`` is a *fixpoint* under ``restore``:

    restore(s); snapshot() == s

for every snapshot ``s`` any producer emits along any reachable path --
and that equal snapshots fingerprint identically (interning and the
cross-process filter key on that).  This suite drives all five producers
(both products, the OoO core, the in-order core, the ISA machine -- plus
their constituents, ContractShadowLogic and DataCache, via the product
paths) through real programs, including the ShadowProduct seq-rebasing
path where commits advance the rebase origin mid-flight.
"""

from __future__ import annotations

import pytest

from repro.core.contracts import sandboxing
from repro.core.products import BaselineProduct, ShadowProduct
from repro.events import FetchBundle
from repro.isa.instruction import HALT, Instruction, Opcode, alu, branch, load, loadimm
from repro.isa.machine import IsaMachine
from repro.isa.params import MachineParams
from repro.mc.intern import stable_fingerprint
from repro.uarch.config import CacheConfig, Defense
from repro.uarch.inorder import InOrderCore
from repro.uarch.simple_ooo import simple_ooo

PARAMS = MachineParams(imem_size=4)

#: A program with a branch, loads and arithmetic: enough to move every
#: piece of producer state (ROB, latches, predictor occurrences, cache).
PROGRAM = (
    load(1, 0, 3),
    branch(1, 2),
    load(2, 1, 0),
    HALT,
)

DMEM_PAIR = ((0, 0, 1, 0), (0, 0, 1, 1))


def _fetch(program, pc, predicted=False):
    inst = program[pc] if 0 <= pc < len(program) else HALT
    taken = predicted if inst.op == Opcode.BRANCH else None
    return FetchBundle(pc=pc, inst=inst, predicted_taken=taken)


def _assert_fixpoint(snapshot, restore, snap, label):
    restore(snap)
    again = snapshot()
    assert again == snap, label
    assert stable_fingerprint(again) == stable_fingerprint(snap), label


def _drive_product(product, cycles=12):
    """Step a product over PROGRAM, checking the fixpoint every cycle."""
    product.reset(DMEM_PAIR)
    snaps = [product.snapshot()]
    for cycle in range(cycles):
        requests = product.fetch_requests()
        bundles = [None] * len(product.machines)
        for req in requests:
            bundles[req.slot] = _fetch(PROGRAM, req.pc, predicted=True)
        result = product.step_cycle(bundles)
        snap = product.snapshot()
        snaps.append(snap)
        _assert_fixpoint(
            product.snapshot, product.restore, snap, f"cycle {cycle}"
        )
        if result.failed or result.pruned or product.quiescent():
            break
    # Re-restoring an *early* snapshot after later mutation must also be
    # a fixpoint (the DFS restores in arbitrary stack order).
    for index, snap in enumerate(snaps):
        _assert_fixpoint(
            product.snapshot, product.restore, snap, f"replayed snap {index}"
        )
    return snaps


def test_shadow_product_roundtrip_including_seq_rebase():
    product = ShadowProduct(
        lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing()
    )
    snaps = _drive_product(product)
    # The run must exercise the rebasing path: some snapshot with in-flight
    # instructions after at least one commit (non-zero rebased next_seq).
    assert any(snap[0][8] for snap in snaps), "no in-flight ROB state seen"


def test_shadow_product_roundtrip_with_cache():
    cache = CacheConfig(n_sets=1, block_words=2, hit_latency=1, miss_latency=3)
    product = ShadowProduct(
        lambda: simple_ooo(Defense.DOM_SPECTRE, params=PARAMS, cache=cache),
        sandboxing(),
    )
    snaps = _drive_product(product)
    assert any(snap[0][7] is not None for snap in snaps), "cache state missing"


def test_baseline_product_roundtrip():
    product = BaselineProduct(
        lambda: simple_ooo(Defense.NONE, params=PARAMS), sandboxing()
    )
    _drive_product(product)


def test_ooo_core_roundtrip():
    core = simple_ooo(Defense.NONE, params=PARAMS)
    core.reset(DMEM_PAIR[0])
    snaps = [core.snapshot()]
    for _ in range(10):
        pc = core.poll_fetch()
        bundle = None if pc is None else _fetch(PROGRAM, pc, predicted=True)
        core.step(bundle)
        snap = core.snapshot()
        snaps.append(snap)
        _assert_fixpoint(core.snapshot, core.restore, snap, "ooo")
        if core.halted:
            break
    for snap in snaps:
        _assert_fixpoint(core.snapshot, core.restore, snap, "ooo replay")


@pytest.mark.parametrize("machine_cls", [InOrderCore, IsaMachine])
def test_sequential_machines_roundtrip(machine_cls):
    machine = machine_cls(PARAMS)
    machine.reset(DMEM_PAIR[0])
    snaps = [machine.snapshot()]
    for _ in range(10):
        pc = machine.poll_fetch()
        bundle = None if pc is None else _fetch(PROGRAM, pc)
        machine.step(bundle)
        snap = machine.snapshot()
        snaps.append(snap)
        _assert_fixpoint(machine.snapshot, machine.restore, snap, "seq")
        if machine.halted:
            break
    for snap in snaps:
        _assert_fixpoint(machine.snapshot, machine.restore, snap, "seq replay")


def test_equal_snapshots_intern_to_one_object():
    from repro.mc.intern import InternTable

    core = simple_ooo(Defense.NONE, params=PARAMS)
    core.reset(DMEM_PAIR[0])
    table = InternTable()
    first, first_id = table.intern(core.snapshot())
    core.restore(first)
    second, second_id = table.intern(core.snapshot())
    assert second is first and second_id == first_id
    assert len(table) == 1
