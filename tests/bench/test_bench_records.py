"""BENCH_*.json schema validation and the perf-regression gate.

Tier-1 coverage for the CI perf lane: the committed record files must
validate (so the gate never silently no-ops on malformed baselines), the
validator must actually catch the failure shapes it exists for, and the
gate must fail on regressions, tolerate noise, and fall back to
throughput-only gating on oversubscribed (single-core) runners.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

from repro.bench import perf_gate, records

REPO_ROOT = Path(__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def test_committed_bench_records_validate():
    for name in records.DEFAULT_FILES:
        problems = records.validate_file(REPO_ROOT / name)
        assert problems == [], problems


def _campaign_record() -> dict:
    return {
        "experiment": "table2-grid",
        "scale": "quick",
        "cpu_count": 1,
        "n_workers": 4,
        "oversubscribed": True,
        "n_units": 10,
        "n_shards": 72,
        "serial_s": 6.0,
        "parallel_s": 24.0,
        "speedup": 0.25,
        "cells": {"shadow/Sodor": "proved"},
    }


def test_validator_accepts_a_well_formed_record():
    assert records.validate_record("r", _campaign_record()) == []


def test_validator_flags_missing_and_mistyped_fields():
    record = _campaign_record()
    del record["n_shards"]
    record["serial_s"] = "fast"
    problems = records.validate_record("r", record)
    assert any("n_shards" in p for p in problems)
    assert any("serial_s" in p for p in problems)


def test_validator_flags_inconsistent_speedup():
    record = _campaign_record()
    record["speedup"] = 2.0  # serial_s/parallel_s says 0.25
    problems = records.validate_record("r", record)
    assert any("speedup" in p and "inconsistent" in p for p in problems)


def test_validator_flags_dishonest_oversubscription():
    record = _campaign_record()
    record["oversubscribed"] = False  # 4 workers on 1 CPU
    problems = records.validate_record("r", record)
    assert any("oversubscribed" in p for p in problems)


def test_validator_flags_unknown_experiments_and_bad_verdicts():
    assert records.validate_record("r", {"experiment": "mystery"})
    record = _campaign_record()
    record["cells"] = {"shadow/Sodor": "maybe"}
    assert any(
        "cells" in p for p in records.validate_record("r", record)
    )


def _engine_matrix_record(
    vector_states_per_s: float = 60000.0,
    object_states_per_s: float = 20000.0,
) -> dict:
    def leg(states_per_s: float) -> dict:
        return {
            "elapsed_s": round(504170 / states_per_s, 3),
            "states_per_s": states_per_s,
            "visited_keys": 504170,
            "visited_bytes": 500,
        }

    packed_states_per_s = object_states_per_s * 1.9
    return {
        "experiment": "engine-matrix",
        "scale": "quick",
        "cpu_count": 1,
        "cell": {"panel": "a", "structure": "rob", "size": 8},
        "kind": "proved",
        "states": 504170,
        "engine_mode": "vector",
        "engines": {
            "object": leg(object_states_per_s),
            "packed": leg(packed_states_per_s),
            "vector": leg(vector_states_per_s),
        },
        "vector_vs_object": round(vector_states_per_s / object_states_per_s, 3),
        "vector_vs_packed": round(vector_states_per_s / packed_states_per_s, 3),
    }


def test_validator_accepts_an_engine_matrix_record():
    assert records.validate_record("r", _engine_matrix_record()) == []


def test_validator_flags_engine_matrix_problems():
    record = _engine_matrix_record()
    record["vector_vs_object"] = 1.0  # recorded legs say 3.0
    problems = records.validate_record("r", record)
    assert any("vector_vs_object" in p and "inconsistent" in p for p in problems)

    record = _engine_matrix_record()
    del record["engines"]["vector"]  # the ratios divide by this leg
    problems = records.validate_record("r", record)
    assert any("vector" in p for p in problems)

    record = _engine_matrix_record()
    record["engines"]["quantum"] = record["engines"]["packed"]
    problems = records.validate_record("r", record)
    assert any("quantum" in p for p in problems)


def test_records_cli_on_committed_files_and_garbage(tmp_path, capsys):
    paths = [str(REPO_ROOT / name) for name in records.DEFAULT_FILES]
    assert records.main(paths) == 0
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text('{"r": {"experiment": "mystery"}}')
    assert records.main([str(bad)]) == 1
    capsys.readouterr()  # keep the report out of pytest's captured noise


# ----------------------------------------------------------------------
# The perf gate
# ----------------------------------------------------------------------
def _explorer_record(states_per_s: float = 20000.0) -> dict:
    return {
        "experiment": "explorer-throughput",
        "scale": "quick",
        "cpu_count": 1,
        "cell": {"panel": "a", "structure": "rob", "size": 4},
        "kind": "proved",
        "states": 74878,
        "engine_mode": "packed",
        "legacy": {
            "elapsed_s": 5.0,
            "states_per_s": 15000.0,
            "visited_keys": 74878,
            "visited_bytes": 1000,
        },
        "engine": {
            "elapsed_s": 3.0,
            "states_per_s": states_per_s,
            "visited_keys": 74878,
            "visited_bytes": 200,
        },
        "speedup": round(states_per_s / 15000.0, 3),
        "visited_bytes_ratio": 0.2,
    }


def test_gate_passes_identical_records():
    baseline = {"rob4": _explorer_record()}
    failures, _ = perf_gate.gate_records(
        baseline, copy.deepcopy(baseline), tolerance=0.2
    )
    assert failures == []


def test_gate_fails_on_a_throughput_regression():
    baseline = {"rob4": _explorer_record(20000.0)}
    fresh = {"rob4": _explorer_record(10000.0)}  # 2x slower
    failures, _ = perf_gate.gate_records(baseline, fresh, tolerance=0.2)
    assert any("states/s" in f for f in failures)


def test_gate_tolerates_noise_inside_the_tolerance():
    baseline = {"rob4": _explorer_record(20000.0)}
    fresh = {"rob4": _explorer_record(17000.0)}  # -15% < 20%
    failures, _ = perf_gate.gate_records(baseline, fresh, tolerance=0.2)
    assert failures == []


def test_gate_checks_lower_is_better_metrics():
    baseline = {"rob4": _explorer_record()}
    fresh = {"rob4": _explorer_record()}
    fresh["rob4"]["visited_bytes_ratio"] = 0.9  # memory win regressed
    failures, _ = perf_gate.gate_records(baseline, fresh, tolerance=0.2)
    assert any("visited bytes ratio" in f for f in failures)


def test_gate_skips_parallel_metrics_on_oversubscribed_runners():
    """4 workers on 1 CPU cannot demonstrate speedup: the gate must say
    so and fall back to states/s-only instead of failing on physics."""
    record = {
        "experiment": "fig2-rob-subroot",
        "scale": "quick",
        "cpu_count": 1,
        "n_workers": 4,
        "oversubscribed": True,
        "panel": "a",
        "rob_size": 8,
        "n_roots": 2,
        "kind": "proved",
        "states": 504170,
        "serial_s": 24.0,
        "sharded_s": 30.0,
        "speedup": 0.8,
    }
    fresh = copy.deepcopy(record)
    fresh["sharded_s"], fresh["speedup"] = 60.0, 0.4  # would fail the gate
    failures, notes = perf_gate.gate_records(
        {"cell": record}, {"cell": fresh}, tolerance=0.2
    )
    assert failures == []
    assert any("oversubscribed" in n for n in notes)
    # On a genuinely parallel runner the same regression must fail.
    record["cpu_count"] = fresh["cpu_count"] = 8
    record["oversubscribed"] = fresh["oversubscribed"] = False
    failures, _ = perf_gate.gate_records(
        {"cell": record}, {"cell": fresh}, tolerance=0.2
    )
    assert any("speedup" in f for f in failures)


def test_gate_engine_matrix_vector_metrics():
    """The engine-matrix gates are same-process throughput metrics, so
    they gate everywhere -- including single-core runners."""
    baseline = {"rob8": _engine_matrix_record(60000.0)}
    failures, _ = perf_gate.gate_records(
        baseline, copy.deepcopy(baseline), tolerance=0.2
    )
    assert failures == []

    fresh = {"rob8": _engine_matrix_record(30000.0)}  # vector lost its edge
    failures, _ = perf_gate.gate_records(baseline, fresh, tolerance=0.2)
    assert any("vector states/s" in f for f in failures)
    assert any("vector vs object" in f for f in failures)


def test_gate_multicore_campaign_real_speedup_path():
    """The nightly multi-core lane's contract: a fresh table2-grid
    record measured with real cores (``oversubscribed: false``) flips
    the parallel speedup metric from skipped to gated -- even against
    an oversubscribed single-core baseline."""
    baseline = _campaign_record()  # oversubscribed: true, speedup 0.25
    fresh = _campaign_record()
    fresh.update(cpu_count=4, oversubscribed=False, parallel_s=2.0, speedup=3.0)
    failures, notes = perf_gate.gate_records(
        {"grid": baseline}, {"grid": fresh}, tolerance=0.2
    )
    assert failures == []  # 0.25 -> 3.0 is an improvement, gated and passed
    assert not any("not gated" in n for n in notes)

    regressed = _campaign_record()
    regressed.update(
        cpu_count=4, oversubscribed=False, parallel_s=30.0, speedup=0.2
    )
    failures, _ = perf_gate.gate_records(
        {"grid": fresh}, {"grid": regressed}, tolerance=0.2
    )
    assert any("speedup" in f for f in failures)


def test_gate_skips_metrics_below_the_noise_floor():
    record = {
        "experiment": "fuzz-time-to-leak",
        "cpu_count": 1,
        "config": {},
        "trials_to_leak": 13,
        "programs_total": 105,
        "found_at": [0, 0, 12],
        "leak_cycles": 6,
        "minimized_length": 3,
        "minimize_probes": 9,
        "coverage_keys": 17,
        "elapsed_s": 0.026,
        "time_to_first_leak_s": 0.026,
    }
    fresh = copy.deepcopy(record)
    fresh["time_to_first_leak_s"] = 0.2  # "8x worse" -- but 26ms baseline
    failures, notes = perf_gate.gate_records(
        {"leak": record}, {"leak": fresh}, tolerance=0.2
    )
    assert failures == []
    assert any("floor" in n for n in notes)


def test_gate_reports_unrefreshed_and_new_records_as_notes():
    baseline = {"old": _explorer_record()}
    fresh = {"new": _explorer_record()}
    failures, notes = perf_gate.gate_records(baseline, fresh, tolerance=0.2)
    assert failures == []
    assert any("not refreshed" in n for n in notes)
    assert any("no baseline" in n for n in notes)


def test_gate_cli_end_to_end(tmp_path, capsys, monkeypatch):
    baseline_dir, fresh_dir = tmp_path / "base", tmp_path / "fresh"
    baseline_dir.mkdir()
    fresh_dir.mkdir()
    (baseline_dir / "BENCH_explorer.json").write_text(
        json.dumps({"rob4": _explorer_record(20000.0)})
    )
    (fresh_dir / "BENCH_explorer.json").write_text(
        json.dumps({"rob4": _explorer_record(19000.0)})
    )
    argv = [
        "--baseline-dir", str(baseline_dir),
        "--fresh-dir", str(fresh_dir),
        "--files", "BENCH_explorer.json",
    ]
    assert perf_gate.main([*argv, "--tolerance", "0.2"]) == 0
    assert perf_gate.main([*argv, "--tolerance", "0.01"]) == 1
    monkeypatch.setenv(perf_gate.TOLERANCE_ENV, "0.01")
    assert perf_gate.main(argv) == 1  # env tolerance honored
    capsys.readouterr()
