"""Smoke test for the consolidated report CLI."""

from __future__ import annotations

from repro.bench import report


def test_report_cli_runs_the_inventory_only(capsys):
    code = report.main(["--skip", "table2,table3,fig2,hunt,ablation"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "total evaluation time" in out


def test_report_cli_rejects_unknown_scale():
    import pytest

    with pytest.raises(SystemExit):
        report.main(["--scale", "galactic"])
