"""Smoke test for the consolidated report CLI."""

from __future__ import annotations

from dataclasses import replace

from repro.bench import report, table3
from repro.bench.configs import QUICK
from repro.campaign.log import CampaignLog
from repro.uarch.config import Defense


def test_report_cli_runs_the_inventory_only(capsys):
    code = report.main(["--skip", "table2,table3,fig2,hunt,ablation"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "total evaluation time" in out


def test_report_cli_rejects_unknown_scale():
    import pytest

    with pytest.raises(SystemExit):
        report.main(["--scale", "galactic"])


def test_report_cli_rerenders_table3_from_a_jsonl_log(capsys, tmp_path):
    """--from-log re-renders a campaign's tables without re-running."""
    path = tmp_path / "table3.jsonl"
    scale = replace(QUICK, name="test", proof_timeout=30.0)
    with open(path, "w", encoding="utf-8") as handle:
        table3.run(
            scale,
            defenses=[Defense.NONE],
            n_workers=1,
            log=CampaignLog(handle),
        )
    capsys.readouterr()
    code = report.main(["--from-log", str(path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 3" in out


def test_report_cli_from_log_rejects_an_empty_log(capsys, tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert report.main(["--from-log", str(path)]) == 1


def test_report_cli_rerenders_fig2_and_ablation_from_a_jsonl_log(
    capsys, tmp_path
):
    """The campaign-ized sweeps re-render from their logs too."""
    from repro.bench import ablation, fig2

    path = tmp_path / "sweeps.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        log = CampaignLog(handle)
        fig2.run(
            QUICK,
            regfile_sizes=(2,),
            dmem_sizes=(2,),
            rob_sizes=(2,),
            n_workers=1,
            log=log,
        )
        ablation.run(
            QUICK, workloads=ablation.WORKLOADS[:1], n_workers=1, log=log
        )
    capsys.readouterr()
    code = report.main(["--from-log", str(path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "regfile  2:" in out
    assert "Ablation" in out
    assert "attack (insecure SimpleOoO)" in out


def test_report_cli_rerenders_the_hunt_narrative_from_a_jsonl_log(
    capsys, tmp_path
):
    """BOOM hunt rounds logged with classified sources re-render through
    --from-log without re-running the hunt."""
    from repro.bench import boom_hunt
    from repro.mc.result import ATTACK, PROVED, Outcome, SearchStats

    path = tmp_path / "hunt.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        log = CampaignLog(handle)
        log.result(
            boom_hunt.EXPERIMENT,
            ("sandboxing", "0"),
            Outcome(kind=ATTACK, elapsed=1.5, stats=SearchStats(states=10)),
            extra={"source": "misaligned", "exclusions": []},
        )
        log.result(
            boom_hunt.EXPERIMENT,
            ("sandboxing", "1"),
            Outcome(kind=PROVED, elapsed=9.0, stats=SearchStats(states=99)),
            extra={"source": None, "exclusions": ["misaligned"]},
        )
    from repro.campaign.log import read_records

    steps = boom_hunt.steps_from_records(read_records(str(path)))["sandboxing"]
    assert [s.round_index for s in steps] == [0, 1]
    assert steps[0].source == "misaligned"
    assert steps[1].active_exclusions == ("misaligned",)
    capsys.readouterr()
    code = report.main(["--from-log", str(path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "BOOM attack enumeration -- sandboxing contract" in out
    assert "ATTACK via misaligned" in out
    assert "excluded [misaligned] -> proved" in out
