"""Smoke tests for the benchmark harness (cheap configurations only).

The real experiment budgets live in ``benchmarks/``; these tests check
that the harness plumbing (configs, table formatting, inventory, hunt
classification) behaves, using second-scale budgets.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench import boom_hunt, fig2, table1, table3
from repro.bench.configs import QUICK, SCALES, scale_by_name
from repro.bench.runner import BudgetedResult, format_table, run_task
from repro.bench.table2 import designs
from repro.core.contracts import sandboxing
from repro.core.verifier import VerificationTask
from repro.isa.encoding import space_tiny
from repro.isa.params import MachineParams
from repro.mc.explorer import SearchLimits
from repro.uarch.config import Defense
from repro.uarch.simple_ooo import simple_ooo

TINY_SCALE = replace(
    QUICK,
    name="test",
    proof_timeout=30.0,
    attack_timeout=30.0,
    dom_timeout=30.0,
    hunt_timeout=30.0,
)


def test_scales_registry():
    assert scale_by_name("quick").name == "quick"
    assert set(SCALES) == {"quick", "paper"}
    with pytest.raises(KeyError):
        scale_by_name("galactic")


def test_run_task_wraps_outcomes():
    task = VerificationTask(
        core_factory=lambda: simple_ooo(
            Defense.NONE, params=MachineParams(imem_size=3)
        ),
        contract=sandboxing(),
        space=space_tiny(),
        limits=SearchLimits(timeout_s=30),
    )
    result = run_task("t", "SimpleOoO", task)
    assert isinstance(result, BudgetedResult)
    assert "ATTACK" in result.cell


def test_format_table_alignment():
    text = format_table(
        "demo", ["col-a", "b"], [("row", ["x", "yy"]), ("longer-row", ["1", "2"])]
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert all("|" in line for line in lines[1:] if "-" * 5 not in line)


def test_format_table_with_zero_rows_renders_the_header():
    """Regression: ``max()`` over an unpacked empty generator raised
    ``TypeError`` when a campaign cut short by its budget produced an
    empty grid."""
    text = format_table("empty", ["col-a", "b"], [])
    lines = text.splitlines()
    assert lines[0] == "empty"
    assert "col-a" in lines[1] and "b" in lines[1]
    assert set(lines[2]) == {"-"}
    assert len(lines) == 3


def test_table1_inventory_reports_all_cores():
    rows = table1.run()
    assert len(rows) == 5
    text = table1.format_rows(rows)
    assert "SimpleOoO" in text and "shadow logic" in text


def test_table2_designs_cover_the_paper_columns():
    names = [d.name for d in designs()]
    assert names == ["Sodor", "SimpleOoO-S", "SimpleOoO", "Ridecore", "BOOM"]
    secure = {d.name for d in designs() if d.secure}
    assert secure == {"Sodor", "SimpleOoO-S"}


def test_table3_single_defense_cell():
    results = table3.run(TINY_SCALE, defenses=[Defense.NONE])
    assert results[(Defense.NONE, "sandboxing")].attacked
    assert results[(Defense.NONE, "constant-time")].attacked


def test_fig2_space_reaches_the_secret_for_every_memory_size():
    for mem_size in (2, 4, 8, 16):
        space = fig2._space(mem_size, 4)
        imms = {inst.c for inst in space.instructions() if inst.op.name == "LOAD"}
        assert (mem_size - 1) in imms  # the last (secret) cell is reachable


def test_boom_hunt_first_round_classifies_a_source():
    steps = boom_hunt.run(sandboxing(), TINY_SCALE, max_rounds=1)
    assert len(steps) == 1
    assert steps[0].outcome.attacked
    assert steps[0].source in ("misaligned", "illegal", "mispredict")
