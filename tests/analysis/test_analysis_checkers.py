"""Golden-violation corpus for the shadowlint checkers.

Each checker has one positive fixture (every rule fires at least once,
with exact counts pinned) and one near-miss negative fixture (the same
surface shapes, kept safe) under ``tests/analysis/fixtures/``.  The
negatives are the sharper half: they pin the checker's precision, so a
future "improvement" that starts flagging ``sorted(set(...))`` or a
``Protocol`` definition fails here before it floods the repo run.
"""

from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import analyze, built_in_checkers

FIXTURES = Path(__file__).parent / "fixtures"

BAD_FIXTURES = [
    "det_bad.py",
    "wire_bad.py",
    "status_bad.py",
    "snap_bad.py",
    "packed_bad.py",
]
OK_FIXTURES = [
    "det_ok.py",
    "wire_ok.py",
    "status_ok.py",
    "snap_ok.py",
    "packed_ok.py",
]


def run(name: str, checker_id: str | None = None):
    checkers = None
    if checker_id is not None:
        checkers = [c for c in built_in_checkers() if c.id == checker_id]
        assert checkers, f"unknown checker id {checker_id!r}"
    return analyze([FIXTURES / name], checkers=checkers)


def rule_counts(report) -> Counter:
    return Counter((f.checker, f.rule) for f in report.findings)


class TestDeterminism:
    def test_positive_rules(self):
        report = run("det_bad.py", "determinism")
        assert rule_counts(report) == Counter(
            {
                ("determinism", "salted-hash"): 1,
                ("determinism", "id-value"): 1,
                ("determinism", "set-iter"): 2,
                ("determinism", "import-time-input"): 2,
                ("determinism", "global-random"): 1,
            }
        )

    def test_near_miss_negative(self):
        assert run("det_ok.py", "determinism").findings == []

    def test_findings_are_anchored(self):
        report = run("det_bad.py", "determinism")
        for finding in report.findings:
            assert finding.path.endswith("det_bad.py")
            assert finding.line >= 1
            assert f"{finding.checker}[{finding.rule}]" in finding.format()


class TestWireSafety:
    def test_positive_rules(self):
        report = run("wire_bad.py", "wire-safety")
        assert rule_counts(report) == Counter(
            {
                ("wire-safety", "local-class"): 1,
                ("wire-safety", "unslotted"): 2,  # LocalPayload + BareResult
                ("wire-safety", "lambda-field"): 1,
                ("wire-safety", "callable-field"): 1,
            }
        )

    def test_near_miss_negative(self):
        # wire_ok.py keeps a local, unslotted, lambda-carrying class --
        # but off the wire graph, where none of that matters.
        assert run("wire_ok.py", "wire-safety").findings == []


class TestStatusFrames:
    """The live-status roots (ProgressSnapshot / WorkerHealth) are part
    of the wire graph: the same four rules fire on status payloads."""

    def test_positive_rules(self):
        report = run("status_bad.py", "wire-safety")
        assert rule_counts(report) == Counter(
            {
                ("wire-safety", "local-class"): 1,
                ("wire-safety", "unslotted"): 2,  # LocalHealth + BareGauge
                ("wire-safety", "lambda-field"): 1,
                ("wire-safety", "callable-field"): 1,
            }
        )

    def test_near_miss_negative(self):
        # Frozen slotted snapshots pass; the local lambda-carrying
        # helper stays invisible because nothing on the wire names it.
        assert run("status_ok.py", "wire-safety").findings == []

    def test_real_snapshot_classes_are_roots(self):
        from repro.analysis.checkers.wire_safety import WIRE_ROOTS

        assert "ProgressSnapshot" in WIRE_ROOTS
        assert "WorkerHealth" in WIRE_ROOTS


class TestSnapshotPurity:
    def test_positive_rules(self):
        report = run("snap_bad.py", "snapshot-purity")
        counts = rule_counts(report)
        assert counts == Counter({("snapshot-purity", "interned-mutation"): 3})

    def test_near_miss_negative(self):
        # Copies, pre-freeze scratch, and unrelated containers all mutate
        # without tripping the taint.
        assert run("snap_ok.py", "snapshot-purity").findings == []


class TestPackedCaps:
    def test_positive_rules(self):
        report = run("packed_bad.py", "packed-caps")
        assert rule_counts(report) == Counter(
            {
                ("packed-caps", "undeclared-capability"): 1,
                ("packed-caps", "missing-words"): 2,
                ("packed-caps", "snapshot-drift"): 3,
                ("packed-caps", "words-attr-drift"): 1,
                ("packed-caps", "vector-without-packed"): 1,
            }
        )

    def test_near_miss_negative(self):
        # Honest False, a complete packed core, a Protocol, and a
        # non-machine all pass.
        assert run("packed_ok.py", "packed-caps").findings == []


@pytest.mark.parametrize("name", BAD_FIXTURES)
def test_full_run_flags_every_bad_fixture(name):
    assert not analyze([FIXTURES / name]).clean


@pytest.mark.parametrize("name", OK_FIXTURES)
def test_full_run_passes_every_ok_fixture(name):
    report = analyze([FIXTURES / name])
    assert report.clean, [f.format() for f in report.findings]
