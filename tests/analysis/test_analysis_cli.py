"""The ``python -m repro.analysis`` gate: exit codes, JSON, selection,
baseline workflow -- and the repo itself staying clean.

These encode the CI contract: 0 on a clean tree, 1 on any new finding,
2 on usage errors; every golden-violation fixture must fail the gate
and every near-miss fixture must pass it.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD_FIXTURES = ["det_bad.py", "wire_bad.py", "snap_bad.py", "packed_bad.py"]
OK_FIXTURES = ["det_ok.py", "wire_ok.py", "snap_ok.py", "packed_ok.py"]


@pytest.mark.parametrize("name", BAD_FIXTURES)
def test_gate_fails_each_golden_fixture(name):
    assert main([str(FIXTURES / name), "--no-baseline"]) == 1


@pytest.mark.parametrize("name", OK_FIXTURES)
def test_gate_passes_each_near_miss_fixture(name):
    assert main([str(FIXTURES / name), "--no-baseline"]) == 0


def test_repo_package_is_clean():
    # The acceptance bar for the whole suite: the shipped repro package
    # has zero unwaived findings, without leaning on the baseline.
    assert main(["--no-baseline"]) == 0


def test_human_output_summarizes(capsys):
    main([str(FIXTURES / "det_ok.py"), "--no-baseline"])
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_json_output_parses(capsys):
    rc = main([str(FIXTURES / "det_bad.py"), "--no-baseline", "--json"])
    assert rc == 1
    document = json.loads(capsys.readouterr().out)
    assert document["counts"]["new"] == 7
    assert document["counts"]["files"] == 1
    for finding in document["findings"]:
        assert set(finding) == {"path", "line", "checker", "rule", "message"}


def test_select_narrows_the_run(capsys):
    # wire_bad.py is clean under the determinism checker alone ...
    assert main(
        [str(FIXTURES / "wire_bad.py"), "--select", "determinism",
         "--no-baseline"]
    ) == 0
    # ... and fails once wire-safety is selected.
    assert main(
        [str(FIXTURES / "wire_bad.py"), "--select", "wire-safety",
         "--no-baseline"]
    ) == 1


def test_usage_errors_exit_2(capsys):
    assert main(["--select", "nonsense"]) == 2
    assert main(["/no/such/path.py"]) == 2
    assert main([str(FIXTURES / "det_ok.py"), "--baseline",
                 "/no/such/baseline.json"]) == 2


def test_write_baseline_then_gate(tmp_path, capsys):
    fixture = str(FIXTURES / "det_bad.py")
    baseline = tmp_path / "baseline.json"

    assert main([fixture, "--baseline", str(baseline), "--write-baseline"]) == 0
    assert baseline.exists()
    # Grandfathered: the gate passes against the written baseline ...
    assert main([fixture, "--baseline", str(baseline)]) == 0
    # ... and still fails without it.
    assert main([fixture, "--no-baseline"]) == 1


def test_list_checkers_names_all_four(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for checker_id in ("determinism", "wire-safety", "snapshot-purity",
                       "packed-caps"):
        assert checker_id in out


def test_module_entry_point_exit_codes(tmp_path):
    # The real CI invocation: ``python -m repro.analysis`` in a fresh
    # interpreter, non-zero on a planted violation.
    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    planted = tmp_path / "planted.py"
    planted.write_text("KEY = hash('planted')\n", encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(planted),
         "--no-baseline"],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 1, proc.stderr
    assert "salted-hash" in proc.stdout
