"""Golden determinism violations (one per rule)."""

import os
import random
import time

STARTED = time.time()  # import-time-input
WORKERS = os.environ.get("WORKERS", "1")  # import-time-input


def derive(seed, pc, occurrence):
    return hash((seed, pc, occurrence))  # salted-hash


def memo_key(obj):
    return id(obj)  # id-value


def merge(results):
    ordered = []
    for item in set(results):  # set-iter
        ordered.append(item)
    return ordered


def log_lines(keys):
    return [str(key) for key in frozenset(keys)]  # set-iter


def draw():
    return random.random()  # global-random
