"""Golden packed-caps violations: dishonest or drifting capability flags."""


class Undeclared:
    """Machine-like but silent about packed capability."""

    def snapshot(self):
        return ()

    def restore(self, snap):
        pass

    def step_cycle(self):
        return None


class MissingWords:
    """Claims the packed protocol without implementing it."""

    packed_state = True

    def snapshot(self):
        return (self._pc,)

    def restore(self, snap):
        (self._pc,) = snap

    def step(self, fetch):
        return None


class GoodBase:
    packed_state = True

    def snapshot(self):
        return (self._a,)

    def restore(self, snap):
        (self._a,) = snap

    def snapshot_words(self, out):
        out.append(self._a)

    def restore_words(self, words):
        self._a = words[0]

    def step(self, fetch):
        return None


class DriftChild(GoodBase):
    """Overrides the object layout without re-deriving the packed one."""

    def snapshot(self):
        return (self._a, self._b)


class AttrDrift:
    """snapshot and snapshot_words serialize different state fields."""

    packed_state = True

    def snapshot(self):
        return (self._pc, self._regs)

    def snapshot_words(self, out):
        out.append(self._pc)

    def restore(self, snap):
        (self._pc, self._regs) = snap

    def restore_words(self, words):
        self._pc = words[0]

    def step(self, fetch):
        return None


class VectorOverpromise:
    """Claims the vector engine without the packed layout behind it."""

    packed_state = False
    vector_capable = True

    def snapshot(self):
        return (self._m,)

    def restore(self, snap):
        (self._m,) = snap

    def step_cycle(self):
        return None
