"""Near-miss negatives: honest declarations, matched layouts, exemptions."""

from typing import Protocol


class HonestObjectCore:
    """No words protocol -- and says so."""

    packed_state = False

    def snapshot(self):
        return (self._pc,)

    def restore(self, snap):
        (self._pc,) = snap

    def step(self, fetch):
        return None


class PackedCore:
    """Full words protocol; both layouts read the same state fields."""

    packed_state = True

    def snapshot(self):
        return (self._pc, self._regs)

    def snapshot_words(self, out):
        out.extend((self._pc, self._regs))

    def restore(self, snap):
        (self._pc, self._regs) = snap

    def restore_words(self, words):
        self._pc = words[0]
        self._regs = tuple(words[1:])

    def step(self, fetch):
        return None


class MachineProtocol(Protocol):
    """Interface definitions are exempt: nothing to declare."""

    def snapshot(self): ...

    def restore(self, snap): ...

    def step(self, fetch): ...


class NotAMachine:
    """Defines snapshot only; not machine-like, no declaration required."""

    def snapshot(self):
        return ()


class VectorProduct:
    """vector_capable riding on a resolvable packed_capable."""

    vector_capable = True

    @property
    def packed_capable(self):
        return True

    def snapshot(self):
        return (self._m,)

    def restore(self, snap):
        (self._m,) = snap

    def step_cycle(self):
        return None
