"""Near-miss negatives: superficially similar, all deterministic."""

import os
import random


class Key:
    def __init__(self, parts):
        self.parts = parts

    def __hash__(self):
        return hash(self.parts)  # hash() inside __hash__ is the idiom

    def __eq__(self, other):
        return isinstance(other, Key) and self.parts == other.parts


def merge(results):
    ordered = []
    for item in sorted(set(results)):  # sorted() fixes the order
        ordered.append(item)
    return ordered


def dedupe(keys):
    return {key.upper() for key in set(keys)}  # set-to-set is order-free


def summarize(keys):
    unique = set(keys)
    return sum(len(key) for key in unique)  # order-free consumer


def draw(seed):
    return random.Random(seed).random()  # seeded local stream


def read_config():
    return os.environ.get("WORKERS", "1")  # function-scope read is fine
