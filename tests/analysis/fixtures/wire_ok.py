"""Near-miss negatives: the same shapes, kept off the wire or made safe."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Payload:
    bits: tuple


class SlottedResult:
    __slots__ = ("status",)

    def __init__(self, status):
        self.status = status


@dataclass
class WorkItem:
    payload: Payload
    result: SlottedResult
    retries: tuple = field(default_factory=tuple)


def _make_helper_class():
    class NeverShipped:  # local AND unslotted, but unreachable from wire roots
        factory = staticmethod(lambda: 0)

    return NeverShipped
