"""Golden status-frame violations: one per rule, reachable from the
``status`` wire roots (ProgressSnapshot / WorkerHealth)."""

from dataclasses import dataclass, field
from typing import Callable


def _make_health_class():
    class LocalHealth:  # function-local, yet carried inside a snapshot
        def __init__(self, label):
            self.label = label

    return LocalHealth


class BareGauge:  # module-level but no declared instance layout
    def __init__(self, value):
        self.value = value


@dataclass
class WorkerHealth:
    health: "LocalHealth"
    gauge: "BareGauge"
    probe: Callable[[], float]
    retries: int = field(default_factory=lambda: 0)


@dataclass(frozen=True)
class ProgressSnapshot:
    seq: int
    workers: "tuple[WorkerHealth, ...]" = ()
