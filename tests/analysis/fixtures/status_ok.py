"""Near-miss negatives: the same status-frame shapes, kept safe or off
the wire graph entirely."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkerHealth:
    label: str
    slots: int
    rtt_s: float


@dataclass(frozen=True)
class ProgressSnapshot:
    seq: int
    workers: "tuple[WorkerHealth, ...]" = field(default_factory=tuple)


def _make_render_helper():
    class NeverShipped:  # local AND unslotted, but unreachable from wire roots
        fmt = staticmethod(lambda snapshot: str(snapshot))

    return NeverShipped
