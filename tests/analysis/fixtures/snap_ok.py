"""Near-miss negatives: mutation of copies and of pre-freeze scratch."""


def mutate_a_copy(table, rows):
    canonical, sid = table.intern(rows)
    scratch = list(canonical)  # an explicit copy: mutation stays local
    scratch.append(0)
    return scratch, sid


def freeze_then_intern(table, rows):
    staged = []
    for row in rows:
        staged.append(row)  # scratch list, frozen before interning
    return table.id_of(tuple(staged))


def mutate_unrelated(table, rows, log):
    canonical, sid = table.intern(rows)
    log.append(sid)  # a different, never-interned object
    return canonical
