"""Golden snapshot-purity violations: mutating hash-consed values."""


def corrupt_canonical(table, rows):
    canonical, sid = table.intern(rows)
    canonical.append(rows[-1])  # mutates the table's shared canonical
    return sid


def corrupt_argument(table, snap):
    sid = table.id_of(snap)
    snap[0] = 0  # the table aliased snap when it interned it
    return sid


def corrupt_via_alias(table, snap):
    intern = table.intern
    canon, sid = intern(snap)
    first = canon[0]
    first += (9,)  # one-level alias of a canonical, still shared
    return sid
