"""Golden wire-safety violations: one per rule, all reachable from WorkItem."""

from dataclasses import dataclass, field
from typing import Callable


def _make_payload_class():
    class LocalPayload:  # function-local, yet shipped inside WorkItem
        def __init__(self, bits):
            self.bits = bits

    return LocalPayload


class BareResult:  # module-level but no declared instance layout
    def __init__(self, status):
        self.status = status


@dataclass
class WorkItem:
    payload: "LocalPayload"
    result: "BareResult"
    on_done: Callable[[], None]
    retries: int = field(default_factory=lambda: 0)
