"""Baseline round-trip: grandfathering, line-drift tolerance, multiset
matching, and strict rejection of malformed files.

The baseline keys findings by ``(checker, rule, path, context)`` with
``context`` the stripped offending line -- so edits *around* a
grandfathered finding keep it suppressed, while an edit *to* the line
(presumably a fix attempt) resurfaces it.
"""

import json

import pytest

from repro.analysis import analyze
from repro.analysis.baseline import (
    BASELINE_VERSION,
    load_baseline,
    match_baseline,
    save_baseline,
)
from repro.analysis.framework import collect_files


def analyze_and_files(path):
    report = analyze([path])
    files = {file.display: file for file in collect_files([path])}
    return report, files


def test_round_trip_suppresses_everything(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "def f(x):\n    return hash(x)\n\ndef g(x):\n    return id(x)\n",
        encoding="utf-8",
    )
    report, files = analyze_and_files(mod)
    assert len(report.findings) == 2

    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, report.findings, files)
    entries = load_baseline(baseline_path)
    assert len(entries) == 2

    regated = analyze([mod], baseline=entries)
    assert regated.clean
    assert regated.baselined == 2


def test_baseline_survives_line_drift(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("def f(x):\n    return hash(x)\n", encoding="utf-8")
    report, files = analyze_and_files(mod)
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, report.findings, files)

    # Push the finding three lines down; the context key still matches.
    mod.write_text(
        "# a new header comment\n\n\ndef f(x):\n    return hash(x)\n",
        encoding="utf-8",
    )
    regated = analyze([mod], baseline=load_baseline(baseline_path))
    assert regated.clean
    assert regated.baselined == 1


def test_editing_the_offending_line_resurfaces_the_finding(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("def f(x):\n    return hash(x)\n", encoding="utf-8")
    report, files = analyze_and_files(mod)
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, report.findings, files)

    mod.write_text("def f(x):\n    return hash((x, 1))\n", encoding="utf-8")
    regated = analyze([mod], baseline=load_baseline(baseline_path))
    assert regated.baselined == 0
    assert [(f.checker, f.rule) for f in regated.findings] == [
        ("determinism", "salted-hash")
    ]


def test_matching_is_multiset(tmp_path):
    # Two identical violations (same checker/rule/path/context) need two
    # baseline entries; one entry only absorbs one of them.
    mod = tmp_path / "mod.py"
    mod.write_text(
        "def f(x):\n    return id(x)\n\ndef g(x):\n    return id(x)\n",
        encoding="utf-8",
    )
    report, files = analyze_and_files(mod)
    assert len(report.findings) == 2

    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, report.findings, files)
    entries = load_baseline(baseline_path)
    assert len(entries) == 2
    assert entries[0] == entries[1]

    active, suppressed = match_baseline(report.findings, entries[:1], files)
    assert (len(active), suppressed) == (1, 1)
    active, suppressed = match_baseline(report.findings, entries, files)
    assert (len(active), suppressed) == (0, 2)


def test_saved_file_is_sorted_versioned_json(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "def f(x):\n    return id(x)\n\ndef g(x):\n    return hash(x)\n",
        encoding="utf-8",
    )
    report, files = analyze_and_files(mod)
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, report.findings, files)

    document = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert document["version"] == BASELINE_VERSION
    entries = document["findings"]
    assert entries == sorted(
        entries, key=lambda e: (e["checker"], e["rule"], e["path"], e["context"])
    )
    for entry in entries:
        assert set(entry) == {"checker", "rule", "path", "context"}


@pytest.mark.parametrize(
    "text",
    [
        "not json at all {",
        json.dumps({"version": 99, "findings": []}),
        json.dumps({"version": BASELINE_VERSION, "findings": "nope"}),
        json.dumps({"version": BASELINE_VERSION, "findings": [{"checker": 1}]}),
        json.dumps([]),
    ],
)
def test_malformed_baselines_are_rejected(tmp_path, text):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(text, encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(baseline_path)
