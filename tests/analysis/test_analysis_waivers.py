"""Waiver grammar: what suppresses, what does not, and what is itself
a finding.

The waiver layer is the suite's trust boundary -- a silently-broken
waiver either hides real violations or floods CI -- so both directions
are pinned: well-formed waivers suppress exactly their checker on
exactly their lines, and malformed/unreasoned/unknown waivers surface as
``waiver[...]`` findings that no waiver can silence.
"""

from repro.analysis import analyze


def check(tmp_path, text):
    path = tmp_path / "mod.py"
    path.write_text(text, encoding="utf-8")
    return analyze([path])


def kinds(report):
    return {(f.checker, f.rule) for f in report.findings}


def test_trailing_waiver_suppresses_own_line(tmp_path):
    report = check(
        tmp_path,
        "def f(x):\n"
        "    return hash(x)  # repro: allow[determinism] golden value, "
        "process-local only\n",
    )
    assert report.clean
    assert report.waived == 1


def test_comment_line_waiver_covers_next_line(tmp_path):
    report = check(
        tmp_path,
        "def f(x):\n"
        "    # repro: allow[determinism] memo key never leaves the process\n"
        "    return id(x)\n",
    )
    assert report.clean
    assert report.waived == 1


def test_waiver_only_covers_named_checker(tmp_path):
    report = check(
        tmp_path,
        "def f(x):\n"
        "    return hash(x)  # repro: allow[wire-safety] wrong checker\n",
    )
    assert kinds(report) == {("determinism", "salted-hash")}
    assert report.waived == 0


def test_waiver_only_covers_its_line(tmp_path):
    report = check(
        tmp_path,
        "def f(x):\n"
        "    y = hash(x)  # repro: allow[determinism] this one is fine\n"
        "    return hash(y)\n",
    )
    assert kinds(report) == {("determinism", "salted-hash")}
    assert report.waived == 1


def test_multi_id_waiver(tmp_path):
    report = check(
        tmp_path,
        "def f(x):\n"
        "    return hash(x)  # repro: allow[determinism,snapshot-purity] "
        "two ids, one reason\n",
    )
    assert report.clean
    assert report.waived == 1


def test_file_level_waiver(tmp_path):
    report = check(
        tmp_path,
        "# repro: allow-file[determinism] fixture exercises hashing "
        "throughout\n"
        "def f(x):\n"
        "    return hash(x)\n"
        "\n"
        "def g(x):\n"
        "    return id(x)\n",
    )
    assert report.clean
    assert report.waived == 2


def test_malformed_waiver_is_a_finding(tmp_path):
    report = check(tmp_path, "x = 1  # repro: allowed[determinism] typo\n")
    assert kinds(report) == {("waiver", "malformed")}


def test_empty_id_list_is_a_finding(tmp_path):
    report = check(tmp_path, "x = 1  # repro: allow[] no ids\n")
    assert kinds(report) == {("waiver", "empty")}


def test_reasonless_waiver_is_a_finding_and_does_not_suppress(tmp_path):
    report = check(tmp_path, "x = hash(1)  # repro: allow[determinism]\n")
    assert kinds(report) == {
        ("waiver", "no-reason"),
        ("determinism", "salted-hash"),
    }


def test_unknown_checker_id_is_a_finding(tmp_path):
    report = check(
        tmp_path, "x = 1  # repro: allow[spellcheck] not a checker\n"
    )
    assert kinds(report) == {("waiver", "unknown-checker")}


def test_waiver_findings_cannot_be_waived(tmp_path):
    # Even a file-level waiver for the "waiver" checker must not silence
    # waiver-syntax findings: the suppression layer audits itself.
    report = check(
        tmp_path,
        "# repro: allow-file[waiver] trying to silence the audit\n"
        "x = hash(1)  # repro: allow[determinism]\n",
    )
    assert ("waiver", "no-reason") in kinds(report)


def test_waiver_syntax_in_docstrings_is_inert(tmp_path):
    # The grammar documented inside a string literal must neither parse
    # as a live waiver nor report as a malformed one.
    report = check(
        tmp_path,
        '"""Waive with ``# repro: allow[determinism] reason``."""\n'
        "x = hash(1)\n",
    )
    assert kinds(report) == {("determinism", "salted-hash")}
    assert report.waived == 0
