"""Batched dispatch and hot-worker spec caching (scheduler tentpole).

The batching contract: a seeded shard carrying a *contiguous* slice of a
root's first-cycle frontier replays exactly the serial merge of its
singleton shards, so batch boundaries (which calibration moves freely)
can never perturb results.  The spec contract: shipping a unit's spec by
content fingerprint instead of re-pickling it per shard changes what
crosses the pool boundary, not what runs -- outcomes stay bit-identical
and a cold process degrades to one extra round trip (``SpecMiss``).
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.campaign import scheduler
from repro.campaign.backends import (
    ProcessPoolBackend,
    SpecMiss,
    WorkItem,
    execute_envelope,
    make_envelope,
    split_spec,
)
from repro.campaign.backends import specs as specs_module
from repro.campaign.backends.specs import spec_fingerprint
from repro.campaign.backends.wire import pack_task, unpack_task
from repro.campaign.registry import core_spec
from repro.campaign.scheduler import (
    _Calibration,
    _merge_serial,
    _plan_batches,
    _StealGroup,
    verify_sharded,
)
from repro.core.contracts import sandboxing
from repro.core.verifier import VerificationTask, verify
from repro.isa.encoding import EncodingSpace
from repro.isa.params import MachineParams
from repro.mc.explorer import Explorer, SearchLimits
from repro.uarch.config import Defense

TINY = EncodingSpace(
    load_rd=(1, 2),
    load_rs=(0, 1),
    load_imm=(0, 3),
    branch_rs=(0,),
    branch_off=(2,),
)


def _task(imem_size: int = 2, defense: Defense = Defense.NONE) -> VerificationTask:
    return VerificationTask(
        core_factory=core_spec(
            "simple_ooo",
            defense=defense,
            params=MachineParams(imem_size=imem_size),
        ),
        contract=sandboxing(),
        space=TINY,
        limits=SearchLimits(timeout_s=90),
    )


def _first_root_expansion(task: VerificationTask):
    """A single-root subtask plus its first-cycle expansion."""
    root = task.build_roots()[0]
    subtask = replace(task, roots=[root])
    explorer = Explorer(
        subtask.build_product(),
        subtask.space,
        subtask.build_roots(),
        subtask.limits,
    )
    return subtask, explorer.expand_root()


# ----------------------------------------------------------------------
# Batch planning
# ----------------------------------------------------------------------
def test_plan_batches_covers_weights_contiguously():
    weights = [5, 1, 1, 1, 8, 1, 1]
    for n in range(1, len(weights) + 2):
        batches = _plan_batches(weights, n)
        assert batches[0][0] == 0
        assert batches[-1][1] == len(weights)
        for (_, prev_end), (start, end) in zip(batches, batches[1:]):
            assert start == prev_end  # contiguous, in order
            assert end > start  # never an empty batch
        assert len(batches) == min(n, len(weights))


def test_plan_batches_balances_by_weight_not_count():
    # One dominant entry should sit alone; the light tail groups up.
    batches = _plan_batches([100, 1, 1, 1, 1, 1], 2)
    assert batches == [(0, 1), (1, 6)]


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def test_calibration_learns_correction_and_grain():
    cal = _Calibration()
    assert cal.grain_states() == float(scheduler.DEFAULT_GRAIN_STATES)
    cal.observe(predicted=1000, states=100, elapsed=0.01)
    assert cal.corrected(1000) == 100.0  # first sample sets directly
    assert cal.grain_states() == max(
        1000.0, 10_000 * scheduler.TARGET_BATCH_SECONDS
    )
    before = cal.correction
    cal.observe(predicted=1000, states=100, elapsed=0.01)
    assert cal.correction == before  # consistent samples converge
    cal.observe(predicted=0, states=0, elapsed=0.0)  # guarded: no-op
    assert cal.samples == 2


# ----------------------------------------------------------------------
# Batch = serial merge of its singletons
# ----------------------------------------------------------------------
def test_batch_outcome_equals_merged_singleton_shards():
    task = _task(3)
    subtask, expansion = _first_root_expansion(task)
    assert len(expansion.entries) >= 4, "need a frontier worth batching"
    batch = tuple(expansion.entries[1:4])
    batched = WorkItem(subtask, batch, None).run()
    singles = [WorkItem(subtask, (entry,), None).run() for entry in batch]
    merged = _merge_serial(singles)
    assert batched.kind == merged.kind
    assert batched.stats == merged.stats
    assert batched.counterexample == merged.counterexample


def test_steal_group_batch_resplit_composes_identically():
    """A stolen multi-entry batch's per-entry racers merge (no prelude)
    to exactly the batch shard they race."""
    task = _task(3)
    subtask, expansion = _first_root_expansion(task)
    batch = tuple(expansion.entries[0:3])
    group = _StealGroup(None, count=len(batch))
    for index, entry in enumerate(batch):
        group.outcomes[index] = WorkItem(subtask, (entry,), None).run()
    composed = group.outcome()
    batched = WorkItem(subtask, batch, None).run()
    assert composed is not None
    assert composed.kind == batched.kind
    assert composed.stats == batched.stats
    assert composed.counterexample == batched.counterexample


def test_campaign_bit_identical_across_forced_grains(monkeypatch):
    """Coarse and fine grains change the shard count, never the result."""
    task = _task(2)
    serial = verify(task)

    coarse = _Calibration()
    coarse.samples = 1
    coarse.states_per_s = 1e15  # huge grain -> min-batch floor
    coarse.correction = 1e-9
    monkeypatch.setattr(scheduler, "_CALIBRATION", coarse)
    sharded = verify_sharded(task, n_workers=4, subroot="always")
    coarse_shards = scheduler.LAST_TELEMETRY.shards
    assert sharded.kind == serial.kind
    assert sharded.stats == serial.stats
    assert sharded.counterexample == serial.counterexample

    fine = _Calibration()
    fine.samples = 1
    fine.states_per_s = 2000.0  # grain floor (1000 states)
    fine.correction = 1e9  # every entry looks huge -> max batches
    planned_grain = fine.grain_states()  # the run's observations move it
    monkeypatch.setattr(scheduler, "_CALIBRATION", fine)
    sharded = verify_sharded(task, n_workers=4, subroot="always")
    fine_shards = scheduler.LAST_TELEMETRY.shards
    assert sharded.kind == serial.kind
    assert sharded.stats == serial.stats
    assert sharded.counterexample == serial.counterexample

    assert fine_shards > coarse_shards, (
        f"forced grains did not move granularity: "
        f"{coarse_shards} vs {fine_shards} shards"
    )
    assert scheduler.LAST_TELEMETRY.grain_states == planned_grain


# ----------------------------------------------------------------------
# Content-addressed specs
# ----------------------------------------------------------------------
def test_spec_fingerprint_shared_across_shard_shapes():
    task = _task(2)
    roots = task.build_roots()
    fp = spec_fingerprint(split_spec(task)[0])
    for sub in (
        replace(task, roots=[roots[0]]),
        replace(task, roots=[roots[-1]]),
        replace(task, limits=SearchLimits(timeout_s=1, deadline=123.0)),
    ):
        assert spec_fingerprint(split_spec(sub)[0]) == fp
    other = spec_fingerprint(split_spec(_task(2, Defense.NOFWD_SPECTRE))[0])
    assert other != fp


def test_execute_envelope_spec_miss_roundtrip(monkeypatch):
    """A cold process bounces a bare fingerprint; re-sending with the
    spec attached runs, warms the cache, and bare sends then succeed."""
    monkeypatch.setattr(specs_module, "_SPECS", {})
    task = _task(2)
    fp = spec_fingerprint(split_spec(task)[0])
    item = WorkItem(task, None, None, spec_fp=fp)
    reference = WorkItem(task, None, None).run()

    bare = make_envelope(item, with_spec=False)
    assert bare.item.task is None  # the heavy part stayed home
    miss = execute_envelope(bare)
    assert isinstance(miss, SpecMiss) and miss.spec_fp == fp

    warm = make_envelope(item, with_spec=True)
    outcome = execute_envelope(warm)
    assert outcome.kind == reference.kind
    assert outcome.stats == reference.stats

    outcome = execute_envelope(bare)  # cache is warm now
    assert not isinstance(outcome, SpecMiss)
    assert outcome.stats == reference.stats


def test_process_backend_hot_dispatch_is_bit_identical():
    task = _task(2)
    fp = spec_fingerprint(split_spec(task)[0])
    roots = task.build_roots()
    items = [
        WorkItem(replace(task, roots=[root]), None, None, spec_fp=fp)
        for root in roots[:4]
    ]
    references = [item.run() for item in items]
    backend = ProcessPoolBackend(max_workers=2)
    try:
        tickets = [backend.submit_unit(item) for item in items]
        got: dict[int, object] = {}
        while len(got) < len(items):
            for ticket, outcome in backend.as_completed():
                got[ticket] = outcome
        for ticket, reference in zip(tickets, references):
            outcome = got[ticket]
            assert not isinstance(outcome, SpecMiss)
            assert outcome.kind == reference.kind
            assert outcome.stats == reference.stats
        assert backend.spec_misses >= 0  # misses are retried, never seen
    finally:
        backend.close()


def test_wire_translates_spec_backed_deadlines():
    """Deadline translation applies to the envelope's split limits."""
    deadline = time.monotonic() + 30.0
    task = replace(
        _task(2), limits=SearchLimits(timeout_s=5, deadline=deadline)
    )
    fp = spec_fingerprint(split_spec(task)[0])
    env = make_envelope(WorkItem(task, None, None, spec_fp=fp), with_spec=True)
    kind, payload = pack_task(11, env)
    assert kind == "task"
    assert payload["env"].spec is not None  # cold send carries the spec
    assert payload["env"].limits.deadline is None
    assert 25.0 < payload["deadline_left"] <= 30.0
    ticket, received = unpack_task(payload)
    assert ticket == 11
    re_anchored = received.limits.deadline - time.monotonic()
    assert 25.0 < re_anchored <= 30.0
    assert received.limits.timeout_s == 5
    assert received.item.task is None
