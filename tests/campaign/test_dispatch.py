"""Cost-model dispatch and per-campaign telemetry (scheduler satellites).

Covers the two scheduling-policy changes -- largest-first unit
submission and predicted-subtree steal candidates -- and the telemetry
lifecycle fix: counters reset per campaign and ride on
``CampaignResult`` instead of only a process global.
"""

from __future__ import annotations

from repro.campaign import scheduler
from repro.campaign.backends import SerialBackend
from repro.campaign.registry import core_spec
from repro.campaign.scheduler import (
    CampaignUnit,
    _predicted_states,
    _predicted_subtree,
    run_campaign,
    verify_sharded,
)
from repro.core.contracts import sandboxing
from repro.core.verifier import VerificationTask
from repro.isa.encoding import EncodingSpace, space_tiny
from repro.isa.params import MachineParams
from repro.mc.env import Environment
from repro.mc.explorer import FrontierEntry, SearchLimits
from repro.uarch.config import Defense

TINY = EncodingSpace(
    load_rd=(1, 2),
    load_rs=(0, 1),
    load_imm=(0, 3),
    branch_rs=(0,),
    branch_off=(2,),
)


def _task(imem_size: int, defense: Defense = Defense.NONE) -> VerificationTask:
    return VerificationTask(
        core_factory=core_spec(
            "simple_ooo",
            defense=defense,
            params=MachineParams(imem_size=imem_size),
        ),
        contract=sandboxing(),
        space=TINY,
        limits=SearchLimits(timeout_s=90),
    )


class _RecordingBackend(SerialBackend):
    """SerialBackend that records the imem size of every submitted item."""

    def __init__(self):
        super().__init__()
        self.submitted_sizes: list[int] = []

    def submit_unit(self, item):
        self.submitted_sizes.append(
            item.task.core_factory().params.imem_size
        )
        return super().submit_unit(item)


# ----------------------------------------------------------------------
# Largest-first unit submission
# ----------------------------------------------------------------------
def test_predicted_states_orders_by_the_cost_model():
    small, big = _task(2), _task(3)
    assert _predicted_states(big, 6) > _predicted_states(small, 6)
    assert _predicted_states(small, 12) > _predicted_states(small, 6)


def test_units_are_submitted_largest_first():
    """The small unit is listed first but the big one's shards must hit
    the backend first (results still align with the unit list)."""
    units = [
        CampaignUnit("t", ("small",), _task(2)),
        CampaignUnit("t", ("big",), _task(3)),
    ]
    backend = _RecordingBackend()
    results = run_campaign(units, backend=backend, subroot="never")
    assert [r.key for r in results] == [("small",), ("big",)]
    assert backend.submitted_sizes, "nothing was submitted"
    split = backend.submitted_sizes.index(2)
    assert set(backend.submitted_sizes[:split]) == {3}, (
        "big-unit shards were not all submitted before the small unit's: "
        f"{backend.submitted_sizes}"
    )
    # And ordering does not perturb outcomes vs the serial reference.
    serial = run_campaign(units, n_workers=1)
    for got, want in zip(results, serial):
        assert got.outcome.kind == want.outcome.kind
        assert got.outcome.stats == want.outcome.stats


def test_equal_cost_units_keep_list_order():
    units = [
        CampaignUnit("t", (label,), _task(2)) for label in ("a", "b", "c")
    ]
    backend = _RecordingBackend()
    run_campaign(units, backend=backend, subroot="never")
    assert backend.submitted_sizes == [2] * len(backend.submitted_sizes)


# ----------------------------------------------------------------------
# Predicted-subtree steal candidates
# ----------------------------------------------------------------------
def test_predicted_subtree_ranks_open_environments_higher():
    open_env = Environment.empty(4)
    closed_env = open_env.with_slots(
        {pc: space_tiny().instructions()[1] for pc in range(4)}
    )
    wide = FrontierEntry(env=open_env, snap=(), depth=1)
    narrow = FrontierEntry(env=closed_env, snap=(), depth=1)
    assert _predicted_subtree(7, wide) == 7**4
    assert _predicted_subtree(7, narrow) == 1
    assert _predicted_subtree(7, wide) > _predicted_subtree(7, narrow)


def test_rebalance_with_cost_model_stays_bit_identical():
    """The steal path end-to-end under the new candidate policy."""
    from repro.bench import fig2
    from repro.bench.configs import QUICK
    from repro.core.verifier import verify

    task = fig2.point_task(fig2.PANELS[0], "rob", 4, QUICK)
    serial = verify(task)
    sharded = verify_sharded(task, n_workers=4, subroot="always")
    assert scheduler.LAST_TELEMETRY.steals >= 1
    assert sharded.kind == serial.kind
    assert sharded.stats == serial.stats
    assert sharded.counterexample == serial.counterexample


# ----------------------------------------------------------------------
# Telemetry lifecycle
# ----------------------------------------------------------------------
def test_results_carry_the_campaign_telemetry():
    units = [CampaignUnit("t", ("a",), _task(2))]
    results = run_campaign(units, backend="serial")
    assert results[0].telemetry is not None
    assert results[0].telemetry.backend == "serial"
    assert results[0].telemetry is scheduler.LAST_TELEMETRY


def test_telemetry_resets_between_campaigns():
    """A steal-heavy campaign must not leak counters into the next."""
    from repro.bench import fig2
    from repro.bench.configs import QUICK

    task = fig2.point_task(fig2.PANELS[0], "rob", 4, QUICK)
    verify_sharded(task, n_workers=4, subroot="always")
    assert scheduler.LAST_TELEMETRY.steals >= 1
    units = [CampaignUnit("t", ("a",), _task(2))]
    results = run_campaign(units, backend="serial")
    assert scheduler.LAST_TELEMETRY.steals == 0
    assert results[0].telemetry.steals == 0


def test_serial_path_resets_telemetry_too():
    """Even the n_workers=1 historical path re-points the global."""
    stale = scheduler.LAST_TELEMETRY
    units = [CampaignUnit("t", ("a",), _task(2))]
    results = run_campaign(units, n_workers=1)
    assert scheduler.LAST_TELEMETRY is not stale
    assert scheduler.LAST_TELEMETRY.backend == "serial"
    assert results[0].telemetry is scheduler.LAST_TELEMETRY


def test_shared_telemetry_instance_across_results():
    units = [
        CampaignUnit("t", ("a",), _task(2)),
        CampaignUnit("t", ("b",), _task(2)),
    ]
    results = run_campaign(units, backend="serial")
    assert results[0].telemetry is results[1].telemetry
