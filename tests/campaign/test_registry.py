"""Tests for the picklable core-factory registry."""

from __future__ import annotations

import pickle

import pytest

from repro.campaign.registry import (
    CoreSpec,
    core_factory_names,
    core_spec,
    register_core_factory,
)
from repro.isa.params import MachineParams
from repro.uarch.config import Defense
from repro.uarch.simple_ooo import simple_ooo

PARAMS = MachineParams(imem_size=3)


def test_builtin_factories_are_registered():
    assert {"boom", "inorder", "ridecore", "simple_ooo"} <= set(
        core_factory_names()
    )


def test_spec_builds_the_same_core_as_the_direct_call():
    spec = core_spec("simple_ooo", defense=Defense.DELAY_SPECTRE, params=PARAMS)
    direct = simple_ooo(Defense.DELAY_SPECTRE, params=PARAMS)
    built = spec()
    assert built.config == direct.config
    assert spec.params == PARAMS


def test_spec_is_picklable_and_survives_a_roundtrip():
    spec = core_spec("boom")
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone().params == spec().params


def test_spec_kwargs_are_order_insensitive():
    a = CoreSpec("simple_ooo", (("rob_size", 8), ("params", PARAMS)))
    b = CoreSpec("simple_ooo", (("params", PARAMS), ("rob_size", 8)))
    assert a == b and hash(a) == hash(b)


def test_unknown_factory_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown core factory"):
        core_spec("z80")


def test_duplicate_registration_rejected_unless_replaced():
    def factory():
        return simple_ooo(params=PARAMS)

    register_core_factory("test-dup", factory)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_core_factory("test-dup", factory)
        register_core_factory("test-dup", factory, replace=True)
        assert core_spec("test-dup")().params == PARAMS
    finally:
        from repro.campaign.registry import CORE_FACTORIES

        CORE_FACTORIES.pop("test-dup", None)


def test_describe_names_the_factory_and_kwargs():
    text = core_spec("simple_ooo", rob_size=8).describe()
    assert text.startswith("simple_ooo(") and "rob_size=8" in text
