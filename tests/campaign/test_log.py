"""Tests for JSONL campaign logs: roundtrip, canonical form, determinism."""

from __future__ import annotations

import json

from repro.campaign.log import (
    CampaignLog,
    canonical_lines,
    outcome_from_json,
    outcome_to_json,
    read_records,
    result_records,
)
from repro.campaign.registry import core_spec
from repro.campaign.scheduler import CampaignUnit, run_campaign
from repro.core.contracts import sandboxing
from repro.core.verifier import VerificationTask, verify
from repro.isa.encoding import EncodingSpace
from repro.isa.params import MachineParams
from repro.mc.explorer import SearchLimits
from repro.mc.replay import replay
from repro.uarch.config import Defense

PARAMS = MachineParams(imem_size=3)
TINY = EncodingSpace(
    load_rd=(1, 2),
    load_rs=(0, 1),
    load_imm=(0, 3),
    branch_rs=(0,),
    branch_off=(2,),
)


def _task(defense: Defense) -> VerificationTask:
    return VerificationTask(
        core_factory=core_spec("simple_ooo", defense=defense, params=PARAMS),
        contract=sandboxing(),
        space=TINY,
        limits=SearchLimits(timeout_s=90),
    )


def test_attack_outcome_roundtrips_and_replays():
    """A logged counterexample is replay-complete after deserialization."""
    task = _task(Defense.NONE)
    outcome = verify(task)
    assert outcome.attacked
    clone = outcome_from_json(json.loads(json.dumps(outcome_to_json(outcome))))
    assert clone.kind == outcome.kind
    assert clone.stats == outcome.stats
    assert clone.counterexample == outcome.counterexample
    trace = replay(task.build_product(), clone.counterexample)
    assert trace[-1].result.failed


def test_proof_outcome_roundtrips():
    outcome = verify(_task(Defense.DELAY_FUTURISTIC))
    clone = outcome_from_json(outcome_to_json(outcome))
    assert clone.proved and clone.stats == outcome.stats
    assert clone.counterexample is None


def test_log_records_and_canonical_form(tmp_path):
    path = tmp_path / "campaign.jsonl"
    units = [CampaignUnit("t", ("shadow", "insecure"), _task(Defense.NONE))]
    with open(path, "w", encoding="utf-8") as handle:
        run_campaign(units, n_workers=1, log=CampaignLog(handle))
    records = read_records(str(path))
    assert records[0]["type"] == "campaign"
    assert records[0]["n_workers"] == 1
    [result] = result_records(records)
    assert result["key"] == ["shadow", "insecure"]
    assert result["outcome"]["kind"] == "attack"
    [line] = canonical_lines(str(path))
    assert "elapsed" not in line and "n_workers" not in line


def test_results_stream_to_the_log_in_unit_order(tmp_path):
    """Out-of-order finalization still logs the submission order, and a
    finalized prefix is on disk before later units finish (crash
    safety for --from-log)."""
    import io

    from repro.campaign.scheduler import _ResultSink
    from repro.mc.result import PROVED, Outcome, SearchStats

    units = [
        CampaignUnit("t", ("s", str(i)), _task(Defense.NONE)) for i in range(3)
    ]
    stream = io.StringIO()
    sink = _ResultSink(units, CampaignLog(stream))
    outcome = Outcome(kind=PROVED, elapsed=0.0, stats=SearchStats())
    sink.offer(1, outcome)
    assert stream.getvalue() == ""  # unit 0 still pending
    sink.offer(0, outcome)
    keys = [json.loads(line)["key"] for line in stream.getvalue().splitlines()]
    assert keys == [["s", "0"], ["s", "1"]]  # prefix flushed, in order
    sink.offer(2, outcome)
    keys = [json.loads(line)["key"] for line in stream.getvalue().splitlines()]
    assert keys == [["s", "0"], ["s", "1"], ["s", "2"]]


def test_canonical_logs_identical_across_worker_counts(tmp_path):
    """The satellite determinism requirement: same seeds/roots, same log."""
    units = [
        CampaignUnit("t", ("shadow", "insecure"), _task(Defense.NONE)),
        CampaignUnit("t", ("shadow", "delay"), _task(Defense.DELAY_FUTURISTIC)),
    ]
    paths = {}
    for n_workers in (1, 4):
        path = tmp_path / f"campaign-{n_workers}.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            run_campaign(units, n_workers=n_workers, log=CampaignLog(handle))
        paths[n_workers] = str(path)
    assert canonical_lines(paths[1]) == canonical_lines(paths[4])
