"""Backend equivalence: serial / process / socket campaigns are bit-equal.

The backend contract's central promise: a campaign's merged outcomes --
verdicts, counterexamples *and* search statistics -- do not depend on
*where* shards execute, because every shard is a deterministic pure
function of its picklable :class:`WorkItem` and the merge replays serial
LIFO order.  The matrix here runs the CI mini grids through all three
backends (the socket backend against two real local worker agents over
TCP), plus the failure paths: campaign budgets, cancellation notes, and
a worker killed mid-campaign whose in-flight shards must be requeued.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench import ablation, fig2
from repro.bench.configs import QUICK
from repro.campaign import scheduler
from repro.campaign.backends import (
    ProcessPoolBackend,
    SerialBackend,
    SocketClusterBackend,
    WorkItem,
)
from repro.campaign.backends.wire import pack_task, unpack_task
from repro.campaign.registry import core_spec
from repro.campaign.scheduler import (
    BUDGET_NOTE,
    CampaignUnit,
    run_campaign,
    verify_sharded,
)
from repro.core.contracts import sandboxing
from repro.core.verifier import VerificationTask, verify
from repro.isa.encoding import EncodingSpace
from repro.isa.params import MachineParams
from repro.mc.explorer import SearchLimits
from repro.uarch.config import Defense

PARAMS = MachineParams(imem_size=3)

TINY = EncodingSpace(
    load_rd=(1, 2),
    load_rs=(0, 1),
    load_imm=(0, 3),
    branch_rs=(0,),
    branch_off=(2,),
)

#: The CI mini grids (the acceptance workloads for backend equivalence).
GRIDS = {
    "fig2-mini": lambda: fig2.units(
        QUICK, regfile_sizes=(2,), dmem_sizes=(2,), rob_sizes=(2,)
    ),
    "ablation-mini": lambda: ablation.units(
        QUICK, workloads=ablation.WORKLOADS[:2]
    ),
}


def _task(defense: Defense, **overrides) -> VerificationTask:
    base = dict(
        core_factory=core_spec("simple_ooo", defense=defense, params=PARAMS),
        contract=sandboxing(),
        space=TINY,
        limits=SearchLimits(timeout_s=90),
    )
    base.update(overrides)
    return VerificationTask(**base)


@pytest.fixture(scope="module")
def socket_backend():
    """One coordinator + two local worker agents, shared by the module."""
    backend = SocketClusterBackend()
    try:
        backend.spawn_local_workers(2)
        backend.wait_for_workers(2, timeout=60)
        yield backend
    finally:
        backend.close()


def _assert_bit_identical(serial, results, label):
    assert [r.key for r in results] == [r.key for r in serial]
    for ser, par in zip(serial, results):
        assert par.outcome.kind == ser.outcome.kind, (label, ser.key)
        assert par.outcome.stats == ser.outcome.stats, (label, ser.key)
        assert (
            par.outcome.counterexample == ser.outcome.counterexample
        ), (label, ser.key)


# ----------------------------------------------------------------------
# The equivalence matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("grid", sorted(GRIDS))
def test_backend_matrix_bit_identical(grid, socket_backend):
    """serial / process / socket x {fig2-mini, ablation-mini} all match
    the historical serial path, sub-root sharding and rebalance on."""
    units = GRIDS[grid]()
    assert units
    serial_path = run_campaign(units, n_workers=1)
    for backend in ("serial", "process", socket_backend):
        results = run_campaign(
            units, n_workers=4, subroot="always", backend=backend
        )
        label = backend if isinstance(backend, str) else backend.name
        _assert_bit_identical(serial_path, results, label)


def test_serial_backend_is_lazy_and_cancellable():
    """Cancelled items never run; completion order is submission order."""
    backend = SerialBackend()
    item = WorkItem(_task(Defense.NONE))
    first = backend.submit_unit(item)
    second = backend.submit_unit(item)
    assert backend.cancel(first)
    done = list(backend.as_completed())
    assert [ticket for ticket, _ in done] == [second]
    assert done[0][1].attacked


@pytest.mark.parametrize("backend", ["serial", "process"])
def test_budget_cuts_off_named_backends(backend):
    units = [
        CampaignUnit("t", ("a",), _task(Defense.NONE)),
        CampaignUnit("t", ("b",), _task(Defense.DELAY_FUTURISTIC)),
    ]
    results = run_campaign(
        units, n_workers=2, budget_s=0.0, backend=backend
    )
    assert all(r.outcome.timed_out for r in results)
    assert all(r.outcome.note == BUDGET_NOTE for r in results)


def test_budget_cuts_off_socket_campaigns(socket_backend):
    units = [CampaignUnit("t", ("a",), _task(Defense.NONE))]
    results = run_campaign(units, budget_s=0.0, backend=socket_backend)
    assert results[0].outcome.timed_out
    assert results[0].outcome.note == BUDGET_NOTE


def test_socket_backend_expires_queued_work_past_the_deadline(socket_backend):
    """A shard already queued when the deadline passes is budget-synthesized
    coordinator-side (the worker never sees it)."""
    socket_backend.set_deadline(time.monotonic() - 1.0)
    try:
        ticket = socket_backend.submit_unit(WorkItem(_task(Defense.NONE)))
        completed = dict(socket_backend.as_completed())
        assert completed[ticket].timed_out
        assert completed[ticket].note == BUDGET_NOTE
    finally:
        socket_backend.set_deadline(None)


# ----------------------------------------------------------------------
# Worker death
# ----------------------------------------------------------------------
def test_worker_kill_requeues_in_flight_shards():
    """SIGKILL one of two agents mid-campaign: its in-flight shards are
    requeued to the survivor and the merged outcome stays bit-identical."""
    task = fig2.point_task(fig2.PANELS[0], "rob", 4, QUICK)
    serial = verify(task)
    backend = SocketClusterBackend()
    try:
        backend.spawn_local_workers(2)
        backend.wait_for_workers(2, timeout=60)
        victim = backend.spawned[0]
        killer = threading.Timer(0.4, victim.kill)
        killer.start()
        try:
            sharded = verify_sharded(
                task, subroot="always", backend=backend, rebalance=False
            )
        finally:
            killer.cancel()
        assert victim.poll() is not None, "victim survived the kill window"
        assert backend.worker_failures >= 1
        assert backend.requeued >= 1, "no in-flight shard was requeued"
    finally:
        backend.close()
    assert sharded.kind == serial.kind
    assert sharded.stats == serial.stats
    assert sharded.counterexample == serial.counterexample


# ----------------------------------------------------------------------
# Work-stealing rebalance
# ----------------------------------------------------------------------
def test_rebalance_steals_and_stays_bit_identical():
    """The dominant-slice steal fires on a skewed single-root proof and
    the merged outcome still equals the monolithic serial search."""
    task = fig2.point_task(fig2.PANELS[0], "rob", 4, QUICK)
    serial = verify(task)
    sharded = verify_sharded(task, n_workers=4, subroot="always")
    telemetry = scheduler.LAST_TELEMETRY
    assert telemetry.steals >= 1, "idle capacity never triggered a steal"
    assert sharded.kind == serial.kind
    assert sharded.stats == serial.stats
    assert sharded.counterexample == serial.counterexample


def test_rebalance_can_be_disabled():
    task = fig2.point_task(fig2.PANELS[0], "rob", 2, QUICK)
    serial = verify(task)
    sharded = verify_sharded(
        task, n_workers=4, subroot="always", rebalance=False
    )
    assert scheduler.LAST_TELEMETRY.steals == 0
    assert sharded.stats == serial.stats


# ----------------------------------------------------------------------
# Wire-protocol corners
# ----------------------------------------------------------------------
def test_wire_translates_absolute_deadlines_to_remaining_budget():
    """Coordinator-absolute deadlines cross the wire as remaining seconds
    and re-anchor on the receiving host's monotonic clock."""
    deadline = time.monotonic() + 30.0
    task = _task(Defense.NONE, limits=SearchLimits(timeout_s=5, deadline=deadline))
    kind, payload = pack_task(7, WorkItem(task, None, "some-filter"))
    assert kind == "task"
    env = payload["env"]
    assert env.spec_fp is None  # bare items cross as plain envelopes
    assert env.item.task.limits.deadline is None
    assert env.item.filter_name is None  # segments do not cross hosts
    assert 25.0 < payload["deadline_left"] <= 30.0
    ticket, env = unpack_task(payload)
    assert ticket == 7
    re_anchored = env.item.task.limits.deadline - time.monotonic()
    assert 25.0 < re_anchored <= 30.0
    assert env.item.task.limits.timeout_s == 5  # relative budget untouched


def test_socket_backend_rejects_bad_tokens():
    """A connection presenting the wrong token is dropped unauthenticated."""
    import socket as socketlib

    from repro.campaign.backends.wire import recv_frame, send_frame

    backend = SocketClusterBackend()
    try:
        sock = socketlib.create_connection(backend.address, timeout=5)
        send_frame(sock, "hello", {"token": "wrong", "slots": 1})
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and backend.capacity() == 0:
            backend._poll(0.05)
        assert backend.capacity() == 0
        sock.settimeout(2)
        with pytest.raises(Exception):  # EOF -> WireError
            recv_frame(sock)
        sock.close()
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Review-hardening regressions: shard failures and pre-auth frames
# ----------------------------------------------------------------------
class _RaisingItem(WorkItem):
    def run(self):
        raise RuntimeError("boom: deterministic shard bug")


def test_backends_deliver_shard_failures_instead_of_raising():
    """A raising shard surfaces as a ShardFailure completion, so the
    scheduler (not the backend) decides whether it was serially dead."""
    from repro.campaign.backends import ShardFailure

    backend = SerialBackend()
    ticket = backend.submit_unit(_RaisingItem(_task(Defense.NONE)))
    [(done, outcome)] = list(backend.as_completed())
    assert done == ticket
    assert isinstance(outcome, ShardFailure)
    assert "boom" in outcome.message


def test_relevant_shard_failure_aborts_the_campaign(monkeypatch):
    """A failure on a shard the merge still needs raises with the unit id."""
    from repro.campaign import scheduler as sched

    monkeypatch.setattr(
        sched.WorkItem,
        "run",
        lambda self: (_ for _ in ()).throw(RuntimeError("boom")),
    )
    with pytest.raises(RuntimeError, match="t/a.*boom"):
        run_campaign(
            [CampaignUnit("t", ("a",), _task(Defense.NONE))],
            backend="serial",
        )


def test_pre_auth_frames_never_reach_pickle():
    """Before authentication only JSON control frames decode; a crafted
    pickle first frame is rejected at the wire layer (no code execution),
    and the hello/welcome handshake itself crosses as JSON."""
    import json as jsonlib
    import pickle as picklelib

    from repro.campaign.backends.wire import (
        WireError,
        decode_payload,
        send_frame,
    )

    crafted = bytes([0x50]) + picklelib.dumps(("hello", {"token": "x"}))
    with pytest.raises(WireError, match="before authentication"):
        decode_payload(crafted, allow_pickle=False)

    class _Capture:
        def __init__(self):
            self.sent = b""

        def send(self, view):
            self.sent += bytes(view)
            return len(view)

    wire = _Capture()
    send_frame(wire, "hello", {"token": "secret", "slots": 2})
    body = wire.sent[8:]
    assert body[0] == 0x4A  # JSON tag
    kind, payload = jsonlib.loads(body[1:].decode("utf-8"))
    assert kind == "hello" and payload["slots"] == 2
    # And the JSON body decodes fine in pre-auth mode.
    assert decode_payload(body, allow_pickle=False)[0] == "hello"
