"""Tests for sub-root sharding: determinism, short-circuits, budgets.

The central property extends one level below the root: for every worker
count, a campaign with sub-root sharding forced on merges to outcomes --
verdicts, counterexamples *and* search statistics -- identical to the
serial engine's, because first-cycle subtrees are independent and the
merge replays the serial (LIFO) order at both granularities.
"""

from __future__ import annotations

import pytest

from repro.bench import ablation, fig2, table2
from repro.bench.configs import QUICK
from repro.campaign.registry import core_spec
from repro.campaign.scheduler import (
    BUDGET_NOTE,
    CampaignUnit,
    _merge_serial,
    run_campaign,
    verify_sharded,
)
from repro.core.contracts import sandboxing
from repro.core.secrets import secret_memory_pairs
from repro.core.verifier import VerificationTask, verify
from repro.isa.encoding import EncodingSpace
from repro.isa.params import MachineParams
from repro.mc.explorer import SearchLimits
from repro.mc.replay import replay
from repro.mc.result import ATTACK, TIMEOUT, Outcome, SearchStats
from repro.uarch.config import Defense

PARAMS = MachineParams(imem_size=3)

TINY = EncodingSpace(
    load_rd=(1, 2),
    load_rs=(0, 1),
    load_imm=(0, 3),
    branch_rs=(0,),
    branch_off=(2,),
)


def _task(defense: Defense, **overrides) -> VerificationTask:
    base = dict(
        core_factory=core_spec("simple_ooo", defense=defense, params=PARAMS),
        contract=sandboxing(),
        space=TINY,
        limits=SearchLimits(timeout_s=90),
    )
    base.update(overrides)
    return VerificationTask(**base)


# ----------------------------------------------------------------------
# 1-vs-N determinism on the benchmark grids (budget-free)
# ----------------------------------------------------------------------
#: Seconds-scale slices of the three campaign-backed experiment grids.
#: (The full grids run 1-vs-4 in ``benchmarks/test_campaign_scaling.py``.)
GRIDS = {
    "fig2": lambda: fig2.units(
        QUICK, regfile_sizes=(2,), dmem_sizes=(2,), rob_sizes=(2,)
    ),
    "ablation": lambda: ablation.units(QUICK, workloads=ablation.WORKLOADS[:2]),
    "table2": lambda: [
        unit
        for unit in table2.units(QUICK, schemes=("shadow",))
        if unit.key[1] in ("SimpleOoO-S", "SimpleOoO")
    ],
}


@pytest.mark.parametrize("grid", sorted(GRIDS))
def test_subroot_campaign_bit_identical_to_serial(grid):
    """Verdict, counterexample and stats match the serial engine's."""
    units = GRIDS[grid]()
    assert units
    serial = run_campaign(units, n_workers=1)
    parallel = run_campaign(units, n_workers=4, subroot="always")
    for ser, par in zip(serial, parallel):
        assert par.key == ser.key
        assert par.outcome.kind == ser.outcome.kind, ser.key
        assert par.outcome.stats == ser.outcome.stats, ser.key
        assert par.outcome.counterexample == ser.outcome.counterexample, ser.key


def test_single_root_task_splits_below_the_root():
    """The workload root sharding cannot touch: one root, many workers.
    ``subroot="auto"`` must split it and still replay the serial search
    bit for bit, counterexample replay included."""
    root = secret_memory_pairs(PARAMS, "single")[-1]  # attackable subtree
    task = _task(Defense.NONE, roots=[root])
    serial = verify(task)
    sharded = verify_sharded(task, n_workers=4)  # auto: 1 root < 4 workers
    assert serial.attacked and sharded.attacked
    assert sharded.stats == serial.stats
    assert sharded.counterexample == serial.counterexample
    trace = replay(task.build_product(), sharded.counterexample)
    assert trace[-1].result.failed


def test_subroot_never_keeps_root_granularity_identical():
    task = _task(Defense.DELAY_FUTURISTIC)
    serial = verify(task)
    sharded = verify_sharded(task, n_workers=4, subroot="never")
    assert sharded.proved and sharded.stats == serial.stats


def test_invalid_subroot_mode_rejected():
    with pytest.raises(ValueError, match="subroot"):
        run_campaign(
            [CampaignUnit("t", ("k",), _task(Defense.NONE))],
            n_workers=2,
            subroot="sometimes",
        )


# ----------------------------------------------------------------------
# Short-circuit cancellation: serially-later shards contribute nothing
# ----------------------------------------------------------------------
def _outcome(kind: str, states: int, note: str | None = None) -> Outcome:
    return Outcome(
        kind=kind,
        elapsed=0.25,
        stats=SearchStats(states, states + 1, 1, 2, {"assume": 1}),
        note=note,
    )


def test_merge_ignores_pending_shards_behind_the_deciding_one():
    """The serial engine explores list order *reversed*: outcomes[-1] is
    serially first.  An attack there decides the merge even while the
    serially-later outcomes[0] is still pending -- and its stats must not
    be summed once it is cancelled."""
    attack = _outcome(ATTACK, states=7)
    merged = _merge_serial([None, attack])
    assert merged is not None and merged.kind == ATTACK
    assert merged.stats == attack.stats  # pending sibling contributed nothing


def test_merge_blocks_on_pending_serially_earlier_shards():
    attack = _outcome(ATTACK, states=7)
    assert _merge_serial([attack, None]) is None


def test_merge_preserves_the_budget_note_of_the_deciding_shard():
    cutoff = _outcome(TIMEOUT, states=3, note=BUDGET_NOTE)
    merged = _merge_serial([None, cutoff])
    assert merged is not None and merged.kind == TIMEOUT
    assert merged.note == BUDGET_NOTE
    assert merged.stats == cutoff.stats


@pytest.mark.parametrize("subroot", ["never", "always"])
def test_attack_short_circuits_later_shards_at_both_granularities(subroot):
    """Serially-first root attacks; benign siblings are short-circuited at
    root granularity and sub-root granularity alike: the merged stats
    equal the serial engine's, which never explored the siblings."""
    roots = secret_memory_pairs(PARAMS, "single")
    attackable = roots[-1]  # varies the secret cell TINY can reach
    benign = roots[0]
    # LIFO order: the *last* root is explored first, so the benign
    # siblings are serially dead the moment the attackable root decides.
    task = _task(Defense.NONE, roots=[benign, benign, attackable])
    serial = verify(task)
    sharded = verify_sharded(task, n_workers=4, subroot=subroot)
    assert serial.attacked and sharded.attacked
    assert sharded.counterexample == serial.counterexample
    assert sharded.stats == serial.stats  # siblings contributed nothing


@pytest.mark.parametrize("subroot", ["never", "always"])
def test_campaign_budget_cuts_off_subroot_campaigns_too(subroot):
    units = [
        CampaignUnit("t", ("a",), _task(Defense.NONE)),
        CampaignUnit("t", ("b",), _task(Defense.DELAY_FUTURISTIC)),
    ]
    results = run_campaign(
        units, n_workers=2, budget_s=0.0, subroot=subroot
    )
    assert all(r.outcome.timed_out for r in results)
    assert all(r.outcome.note == BUDGET_NOTE for r in results)
