"""Wire-protocol edge cases: framing under truncation, size attacks and
control frames interleaving with large partial sends."""

from __future__ import annotations

import socket as socketlib
import struct
import threading

import pytest

from repro.campaign.backends import WorkItem
from repro.campaign.backends.wire import (
    MAX_FRAME_BYTES,
    WireError,
    extract_frames,
    recv_frame,
    send_frame,
    unpack_task,
    _send_all,
)
from repro.fuzz.configs import preset_config
from repro.fuzz.work import FuzzShard


def _frame_bytes(kind: str, payload: dict) -> bytes:
    """One encoded frame, captured via send_frame."""

    class _Capture:
        def __init__(self):
            self.sent = b""

        def send(self, view):
            self.sent += bytes(view)
            return len(view)

    wire = _Capture()
    send_frame(wire, kind, payload)
    return wire.sent


def _task_frame_bytes(ticket: int = 1) -> bytes:
    """A realistic (pickle) task frame carrying a fuzz shard."""
    from repro.campaign.backends.wire import pack_task

    shard = FuzzShard(
        config=preset_config("fuzz-mini").config,
        round_index=0,
        batch_index=0,
        n_programs=1,
    )
    kind, payload = pack_task(ticket, WorkItem(fuzz=shard))
    return _frame_bytes(kind, payload)


# ----------------------------------------------------------------------
# Truncated length prefixes
# ----------------------------------------------------------------------
def test_truncated_length_prefix_waits_for_more_bytes():
    """A buffer shorter than the 8-byte header yields nothing and is
    left untouched (the reader must not consume partial prefixes)."""
    buffer = bytearray(b"\x00\x00\x00")
    assert extract_frames(buffer) == []
    assert bytes(buffer) == b"\x00\x00\x00"


def test_truncated_body_after_full_prefix_is_not_consumed():
    whole = _frame_bytes("heartbeat", {"pid": 1})
    buffer = bytearray(whole[:-2])
    assert extract_frames(buffer) == []
    assert bytes(buffer) == whole[:-2]
    buffer.extend(whole[-2:])
    [(kind, payload)] = extract_frames(buffer)
    assert kind == "heartbeat" and payload == {"pid": 1}
    assert not buffer


def test_connection_closed_mid_header_raises_wire_error():
    left, right = socketlib.socketpair()
    try:
        left.sendall(b"\x00\x00\x00\x00")  # half a length prefix
        left.close()
        with pytest.raises(WireError, match="closed mid-frame"):
            recv_frame(right)
    finally:
        right.close()


# ----------------------------------------------------------------------
# Oversized frames
# ----------------------------------------------------------------------
def test_oversized_frame_is_rejected_by_the_buffered_reader():
    """A corrupt/hostile length prefix must be refused before any
    allocation, even though the body never arrives."""
    buffer = bytearray(struct.pack(">Q", MAX_FRAME_BYTES + 1))
    with pytest.raises(WireError, match="exceeds protocol maximum"):
        extract_frames(buffer)


def test_oversized_frame_is_rejected_by_the_blocking_reader():
    left, right = socketlib.socketpair()
    try:
        left.sendall(struct.pack(">Q", MAX_FRAME_BYTES + 1) + b"x")
        with pytest.raises(WireError, match="exceeds protocol maximum"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# ----------------------------------------------------------------------
# Heartbeat arriving mid-partial-send
# ----------------------------------------------------------------------
def test_heartbeat_interleaves_with_a_partial_task_frame():
    """Byte-stream form: a complete heartbeat followed by a *partial*
    task frame pops the heartbeat and leaves the partial intact; the
    completed task frame then decodes to a runnable item."""
    heartbeat = _frame_bytes("heartbeat", {"pid": 7})
    task = _task_frame_bytes(ticket=9)
    split = len(task) // 2
    buffer = bytearray(heartbeat + task[:split])
    frames = extract_frames(buffer)
    assert [kind for kind, _ in frames] == ["heartbeat"]
    assert bytes(buffer) == task[:split]
    buffer.extend(task[split:])
    [(kind, payload)] = extract_frames(buffer)
    assert kind == "task"
    ticket, env = unpack_task(payload)
    assert ticket == 9
    item = env.item
    assert item.fuzz is not None and item.fuzz.n_programs == 1


def test_heartbeat_crosses_while_a_large_send_is_stalled():
    """Socket form: while one side's big task frame is stalled on a full
    send buffer, the peer's heartbeat still flows the other way --
    full-duplex control traffic never deadlocks behind a partial send."""
    left, right = socketlib.socketpair()
    left.setblocking(False)
    try:
        left.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_SNDBUF, 4096)
        right.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_RCVBUF, 4096)
        big = _frame_bytes("task", {"blob": b"x" * 512 * 1024})
        done = threading.Event()
        error: list[Exception] = []

        def _sender():
            try:
                _send_all(left, big, timeout=10.0)
            except Exception as exc:  # pragma: no cover - failure path
                error.append(exc)
            finally:
                done.set()

        sender = threading.Thread(target=_sender, daemon=True)
        sender.start()
        # The send is now stalled mid-frame (the buffers are far smaller
        # than the frame).  A heartbeat still crosses right -> left.
        send_frame(right, "heartbeat", {"pid": 1})
        left.settimeout(5)
        kind, payload = recv_frame(left)
        assert kind == "heartbeat" and payload["pid"] == 1
        # Drain the big frame on the right; the stalled send completes.
        right.settimeout(10)
        kind, payload = recv_frame(right)
        assert kind == "task" and payload["blob"] == b"x" * 512 * 1024
        assert done.wait(10), "sender never finished"
        assert not error, error
        sender.join(5)
    finally:
        left.close()
        right.close()


def test_send_stall_times_out_as_wire_error():
    """A peer that never drains kills the connection with a WireError
    instead of blocking the coordinator forever."""
    left, right = socketlib.socketpair()
    left.setblocking(False)
    try:
        left.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_SNDBUF, 4096)
        big = b"y" * 4 * 1024 * 1024
        with pytest.raises(WireError, match="stalled"):
            _send_all(left, big, timeout=0.3)
    finally:
        left.close()
        right.close()
