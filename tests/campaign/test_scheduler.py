"""Tests for the multiprocess campaign scheduler.

The central property: for every worker count, a campaign's merged
outcomes -- verdicts, counterexamples *and* search statistics -- are
identical to the serial engine's, because per-root subtrees are
independent and the merge replays the serial (LIFO) root order.
"""

from __future__ import annotations

import pytest

from repro.campaign.registry import core_spec
from repro.campaign.scheduler import (
    BUDGET_NOTE,
    CampaignUnit,
    resolve_workers,
    run_campaign,
    verify_sharded,
)
from repro.core.contracts import sandboxing
from repro.core.secrets import secret_memory_pairs
from repro.core.verifier import VerificationTask, verify
from repro.isa.encoding import EncodingSpace
from repro.isa.params import MachineParams
from repro.mc.explorer import SearchLimits
from repro.mc.replay import replay
from repro.uarch.config import Defense

PARAMS = MachineParams(imem_size=3)

#: The small universe used by the explorer tests: rich enough for an
#: attack on the insecure core, small enough for second-scale proofs.
TINY = EncodingSpace(
    load_rd=(1, 2),
    load_rs=(0, 1),
    load_imm=(0, 3),
    branch_rs=(0,),
    branch_off=(2,),
)


def _task(defense: Defense, **overrides) -> VerificationTask:
    base = dict(
        core_factory=core_spec("simple_ooo", defense=defense, params=PARAMS),
        contract=sandboxing(),
        space=TINY,
        limits=SearchLimits(timeout_s=90),
    )
    base.update(overrides)
    return VerificationTask(**base)


def _units() -> list[CampaignUnit]:
    return [
        CampaignUnit("t", ("shadow", "insecure"), _task(Defense.NONE)),
        CampaignUnit(
            "t", ("shadow", "delay"), _task(Defense.DELAY_FUTURISTIC)
        ),
    ]


def test_resolve_workers():
    assert resolve_workers(3) == 3
    assert resolve_workers(None) >= 1
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_serial_campaign_matches_plain_verify():
    units = _units()
    results = run_campaign(units, n_workers=1)
    for unit, result in zip(units, results):
        direct = verify(unit.task)
        assert result.outcome.kind == direct.kind
        assert result.outcome.stats == direct.stats


def test_parallel_campaign_is_bit_identical_to_serial():
    """Verdict, counterexample and stats match for any worker count."""
    units = _units()
    serial = run_campaign(units, n_workers=1)
    parallel = run_campaign(units, n_workers=4)
    for ser, par in zip(serial, parallel):
        assert par.key == ser.key
        assert par.outcome.kind == ser.outcome.kind
        assert par.outcome.stats == ser.outcome.stats
        assert par.outcome.counterexample == ser.outcome.counterexample


def test_result_order_follows_unit_order():
    units = list(reversed(_units()))
    results = run_campaign(units, n_workers=4)
    assert [r.key for r in results] == [u.key for u in units]


def test_sharded_attack_short_circuits_and_replays():
    """Forced-ATTACK case: the serially-first root attacks, the sibling
    roots are short-circuited, and the merged counterexample replays
    through ``mc.replay`` exactly like the serial one."""
    roots = secret_memory_pairs(PARAMS, "single")
    attackable = roots[-1]  # varies secret cell 3 (reachable by TINY)
    benign = roots[0]  # varies cell 2: unreachable, proves
    # The LIFO stack explores the *last* root first, so putting the
    # attackable root last makes it the serial engine's first subtree:
    # the benign siblings must be short-circuited, not merged.
    task = _task(Defense.NONE, roots=[benign, benign, attackable])
    serial = verify(task)
    sharded = verify_sharded(task, n_workers=4)
    assert serial.attacked and sharded.attacked
    assert sharded.counterexample == serial.counterexample
    assert sharded.stats == serial.stats  # siblings contributed nothing
    trace = replay(task.build_product(), sharded.counterexample)
    assert trace[-1].result.failed


def test_sharded_attack_in_the_middle_merges_earlier_siblings():
    roots = secret_memory_pairs(PARAMS, "single")
    attackable = roots[-1]
    benign = roots[0]
    # Serial order explores [benign(last), attackable, benign(first)]:
    # the merged stats must include the serially-earlier benign subtree.
    task = _task(Defense.NONE, roots=[benign, attackable, benign])
    serial = verify(task)
    sharded = verify_sharded(task, n_workers=4)
    assert serial.attacked and sharded.attacked
    assert sharded.counterexample == serial.counterexample
    assert sharded.stats == serial.stats


def test_sharded_proof_sums_every_root():
    task = _task(Defense.DELAY_FUTURISTIC)
    serial = verify(task)
    sharded = verify_sharded(task, n_workers=2)
    assert serial.proved and sharded.proved
    assert sharded.stats == serial.stats


def test_campaign_budget_cuts_units_off():
    results = run_campaign(_units(), n_workers=1, budget_s=0.0)
    assert all(r.outcome.timed_out for r in results)
    assert all(r.outcome.note == BUDGET_NOTE for r in results)


def test_parallel_campaign_budget_cuts_units_off():
    results = run_campaign(_units(), n_workers=2, budget_s=0.0)
    assert all(r.outcome.timed_out for r in results)


def test_unpicklable_task_is_rejected_with_guidance():
    unit = CampaignUnit(
        "t",
        ("shadow", "lambda"),
        _task(Defense.NONE, core_factory=lambda: None),
    )
    with pytest.raises(ValueError, match="CoreSpec"):
        run_campaign([unit], n_workers=2)


def test_lambda_factories_still_work_serially():
    from repro.uarch.simple_ooo import simple_ooo

    unit = CampaignUnit(
        "t",
        ("shadow", "lambda"),
        _task(
            Defense.NONE,
            core_factory=lambda: simple_ooo(Defense.NONE, params=PARAMS),
        ),
    )
    [result] = run_campaign([unit], n_workers=1)
    assert result.outcome.attacked
