"""Observer lifecycle: read-only status peers never perturb campaigns.

The coordinator accepts token-authed ``role: "observer"`` connections
that receive ``status`` frames and are never assigned work.  The
bit-identity contract extends to them: attach, detach, vanish without a
goodbye -- the merged campaign outcome must equal the no-observer serial
baseline bit for bit, because an observer holds no shards and owes no
results.  These tests drive real observer connections against a live
coordinator with two local worker agents.
"""

from __future__ import annotations

import socket as socketlib
import threading
import time

import pytest

from repro.bench import fig2
from repro.bench.configs import QUICK
from repro.campaign.backends import SocketClusterBackend
from repro.campaign.backends import cluster as cluster_mod
from repro.campaign.backends.wire import WireError, extract_frames, send_frame
from repro.campaign.scheduler import CampaignUnit, run_campaign
from repro.obs.live import snapshot_from_json


def _unit() -> CampaignUnit:
    """One seconds-scale unit (long enough to attach an observer into)."""
    return CampaignUnit(
        "obs", ("rob4",), fig2.point_task(fig2.PANELS[0], "rob", 4, QUICK)
    )


@pytest.fixture(scope="module")
def serial_baseline():
    """The no-observer serial reference run, shared by the module."""
    return run_campaign([_unit()], n_workers=1)


@pytest.fixture(scope="module")
def backend():
    """One coordinator + two local worker agents, shared by the module."""
    backend = SocketClusterBackend()
    try:
        backend.spawn_local_workers(2)
        backend.wait_for_workers(2, timeout=60)
        yield backend
    finally:
        backend.close()


class _Observer:
    """A real observer connection fed by a background reader thread."""

    def __init__(self, address, token, *, label="obs-test"):
        self.sock = socketlib.create_connection(address, timeout=10)
        self.kinds: list[str] = []
        self.snapshots = []
        self.closed = threading.Event()
        send_frame(
            self.sock,
            "hello",
            {"token": token, "role": "observer", "label": label},
        )
        self._thread = threading.Thread(target=self._pump, daemon=True)
        self._thread.start()

    def _pump(self):
        buffer = bytearray()
        try:
            self.sock.settimeout(30.0)
            while True:
                chunk = self.sock.recv(1 << 16)
                if not chunk:
                    break
                buffer += chunk
                # Everything an observer sees must decode as JSON.
                for kind, payload in extract_frames(buffer, allow_pickle=False):
                    self.kinds.append(kind)
                    if kind == "status":
                        self.snapshots.append(snapshot_from_json(payload))
        except (OSError, WireError):
            pass
        finally:
            self.closed.set()

    def kill(self):
        """Vanish without a goodbye (the SIGKILL-shaped detach)."""
        self.sock.close()

    def join(self, timeout=30.0):
        self._thread.join(timeout)


def _assert_identical(serial, observed, label):
    assert [r.key for r in observed] == [r.key for r in serial]
    for ser, par in zip(serial, observed):
        assert par.outcome.kind == ser.outcome.kind, label
        assert par.outcome.stats == ser.outcome.stats, label
        assert par.outcome.counterexample == ser.outcome.counterexample, label


def test_observer_attached_campaign_is_bit_identical(backend, serial_baseline):
    """An observer attached mid-campaign streams snapshots, is never
    dispatched to, and the merged result equals the serial baseline."""
    units = [_unit()]
    holder: dict = {}
    attach = threading.Timer(
        0.3, lambda: holder.update(obs=_Observer(backend.address, backend.token))
    )
    attach.start()
    try:
        results = run_campaign(
            units,
            backend=backend,
            subroot="always",
            experiment="obs",
            status_interval=0.05,
        )
    finally:
        attach.cancel()
    _assert_identical(serial_baseline, results, "observer-attached")
    observer = holder.get("obs")
    assert observer is not None, "observer never attached"
    # The campaign outlives the attach timer, so frames must have flowed.
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and not observer.snapshots:
        backend._poll(0.05)  # let the welcome/status handshake finish
    assert observer.snapshots, "observer never received a status frame"
    # Read-only by contract: welcome + status only (never task frames;
    # a task would arrive as a pickle frame and fail JSON extraction).
    assert set(observer.kinds) <= {"welcome", "status", "shutdown"}
    final = observer.snapshots[-1]
    assert final.experiment == "obs"
    assert final.units_total == 1
    observer.kill()
    observer.join()


def test_observer_killed_mid_campaign_is_bit_identical(
    backend, serial_baseline
):
    """An observer that vanishes without a goodbye (socket torn down,
    as after SIGKILL) costs nothing: no worker failure, same bits."""
    units = [_unit()]
    failures_before = backend.worker_failures
    holder: dict = {}

    def attach_then_kill():
        observer = _Observer(backend.address, backend.token, label="doomed")
        holder["obs"] = observer
        time.sleep(0.3)
        observer.kill()

    killer = threading.Timer(0.2, attach_then_kill)
    killer.start()
    try:
        results = run_campaign(
            units,
            backend=backend,
            subroot="always",
            status_interval=0.05,
        )
    finally:
        killer.cancel()
    _assert_identical(serial_baseline, results, "observer-killed")
    assert holder["obs"].closed.wait(10.0)
    # The vanished observer is not a worker failure and requeues nothing.
    assert backend.worker_failures == failures_before
    # Both real workers are still attached and healthy.
    assert backend.capacity() == 2


def test_observer_with_bad_token_is_rejected():
    """A wrong-token observer is dropped unauthenticated: no capacity
    change, no status frames, and the socket sees EOF."""
    backend = SocketClusterBackend()
    try:
        sock = socketlib.create_connection(backend.address, timeout=5)
        send_frame(
            sock, "hello", {"token": "wrong", "role": "observer"}
        )
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and backend._workers:
            backend._poll(0.05)
        assert backend.capacity() == 0
        assert not backend._workers  # dropped, not parked
        sock.settimeout(2)
        with pytest.raises(Exception):  # EOF -> WireError / timeout
            from repro.campaign.backends.wire import recv_frame

            recv_frame(sock, allow_pickle=False)
        sock.close()
    finally:
        backend.close()


def test_observer_contributes_no_capacity(backend):
    """Attaching an observer leaves capacity at the two worker slots."""
    before = backend.capacity()
    observer = _Observer(backend.address, backend.token, label="cap-probe")
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline and "welcome" not in observer.kinds:
        backend._poll(0.05)
    assert "welcome" in observer.kinds, "observer never authenticated"
    assert backend.capacity() == before
    # worker_health reports only real workers, never the observer.
    healths = backend.worker_health()
    assert len(healths) == before
    assert all("cap-probe" not in h.label for h in healths)
    observer.kill()
    observer.join()
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline and any(
        w.is_observer for w in backend._workers
    ):
        backend._poll(0.05)
    assert not any(w.is_observer for w in backend._workers)


def test_ping_pong_populates_rtt_histogram(backend, monkeypatch):
    """RTT probes round-trip through real agents into the histogram,
    the per-worker health records, and an attached registry's mirror."""
    from repro.obs.metrics import MetricsRegistry

    monkeypatch.setattr(cluster_mod, "PING_INTERVAL", 0.05)
    registry = MetricsRegistry()
    backend.attach_registry(registry)
    try:
        count_before = backend.heartbeat_rtt.count
        deadline = time.monotonic() + 10
        while (
            time.monotonic() < deadline
            and backend.heartbeat_rtt.count < count_before + 2
        ):
            backend._poll(0.05)
        assert backend.heartbeat_rtt.count >= count_before + 2
        assert backend.heartbeat_rtt.total >= 0.0
        mirrored = registry.histogram("cluster.heartbeat_rtt_s")
        assert mirrored.count >= 1
        healths = backend.worker_health()
        assert healths and any(h.rtt_s is not None for h in healths)
        assert all(h.rtt_s is None or h.rtt_s >= 0.0 for h in healths)
    finally:
        backend.attach_registry(None)


def test_status_frames_fold_worker_health(backend, serial_baseline):
    """Snapshots broadcast during a socket campaign carry per-worker
    health rows for both agents (label, slots, heartbeat age)."""
    observer = _Observer(backend.address, backend.token, label="health-probe")
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline and "welcome" not in observer.kinds:
        backend._poll(0.05)
    results = run_campaign(
        [_unit()], backend=backend, subroot="always", status_interval=0.05
    )
    assert results[0].outcome.kind == serial_baseline[0].outcome.kind
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and not observer.snapshots:
        backend._poll(0.05)
    assert observer.snapshots
    with_workers = [s for s in observer.snapshots if s.workers]
    assert with_workers, "no snapshot carried worker health"
    snap = with_workers[-1]
    assert len(snap.workers) == 2
    for health in snap.workers:
        assert health.slots == 1
        assert health.heartbeat_age_s >= 0.0
    observer.kill()
    observer.join()
