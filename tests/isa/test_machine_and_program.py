"""Tests for the single-cycle ISA machine and Program container."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import space_small
from repro.isa.instruction import HALT, branch, load, loadimm
from repro.isa.machine import IsaMachine
from repro.isa.params import MachineParams
from repro.isa.program import Program, random_memory, random_program

PARAMS = MachineParams(value_bits=2)


def test_program_fetch_out_of_range_is_halt():
    program = Program([loadimm(1, 2)])
    assert program.fetch(0) == loadimm(1, 2)
    assert program.fetch(1) == HALT
    assert program.fetch(-1) == HALT
    assert program.fetch(99) == HALT


def test_program_listing_contains_every_pc():
    program = Program([loadimm(1, 2), HALT])
    listing = program.listing()
    assert "0: loadimm r1, 2" in listing and "1: halt" in listing


def test_isa_machine_runs_one_instruction_per_cycle():
    machine = IsaMachine(PARAMS)
    program = Program([loadimm(1, 2), loadimm(2, 3), HALT])
    records = machine.run(program, (0, 0, 0, 0))
    assert [r.pc for r in records] == [0, 1, 2]
    assert machine.halted


def test_isa_machine_sequential_branch_semantics():
    machine = IsaMachine(PARAMS)
    # beqz r0 taken (r0 == 0): skips the load.
    program = Program([branch(0, 2), load(1, 0, 3), HALT])
    records = machine.run(program, (0, 0, 0, 1))
    assert [r.pc for r in records] == [0, 2]
    assert machine.regs[1] == 0  # the skipped load never executed


def test_isa_machine_load_and_writeback():
    machine = IsaMachine(PARAMS)
    program = Program([load(1, 0, 3), HALT])
    records = machine.run(program, (0, 0, 0, 3))
    assert records[0].wb == 3 and records[0].addr == 3
    assert machine.regs[1] == 3


def test_isa_machine_trap_halts_without_writeback():
    params = MachineParams(value_bits=2, wrap_addresses=False)
    machine = IsaMachine(params)
    program = Program([load(1, 0, 6), loadimm(2, 1)])
    records = machine.run(program, (0, 0, 0, 0))
    assert len(records) == 1
    assert records[0].exception == "illegal" and records[0].wb is None
    assert machine.regs[1] == 0


def test_isa_machine_detects_divergence():
    machine = IsaMachine(PARAMS)
    program = Program([branch(0, 0)])  # beqz r0, +0: tight infinite loop
    with pytest.raises(RuntimeError):
        machine.run(program, (0, 0, 0, 0), max_cycles=50)


def test_snapshot_restore_roundtrip_mid_program():
    machine = IsaMachine(PARAMS)
    program = Program([loadimm(1, 2), load(2, 1, 0), HALT])
    machine.reset((1, 2, 3, 0))
    machine.step_program = None
    out1 = machine.step(_bundle(machine, program))
    snap = machine.snapshot()
    out2_first = machine.step(_bundle(machine, program))
    machine.restore(snap)
    out2_second = machine.step(_bundle(machine, program))
    assert out2_first == out2_second
    assert out1.commits[0].pc == 0


def _bundle(machine, program):
    from repro.events import FetchBundle

    pc = machine.poll_fetch()
    assert pc is not None
    return FetchBundle(pc=pc, inst=program.fetch(pc), predicted_taken=None)


@given(seed=st.integers(0, 10_000))
def test_random_program_draws_from_space(seed):
    rng = random.Random(seed)
    program = random_program(space_small(), 4, rng)
    universe = set(space_small().instructions())
    assert len(program) == 4
    assert all(inst in universe for inst in program)


@given(seed=st.integers(0, 10_000))
def test_random_memory_respects_value_domain(seed):
    rng = random.Random(seed)
    dmem = random_memory(PARAMS, rng)
    assert len(dmem) == PARAMS.mem_size
    assert all(0 <= v < PARAMS.value_domain for v in dmem)
