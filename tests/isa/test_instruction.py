"""Tests for instruction definitions and disassembly."""

from __future__ import annotations

import pytest

from repro.isa.instruction import (
    HALT,
    AluOp,
    BranchCond,
    Instruction,
    Opcode,
    alu,
    branch,
    disassemble,
    is_branch,
    is_memory,
    lh,
    load,
    loadimm,
    mul,
)


def test_builders_produce_expected_opcodes():
    assert loadimm(1, 2).op == Opcode.LOADIMM
    assert alu(1, 2, 3).op == Opcode.ALU
    assert load(1, 0).op == Opcode.LOAD
    assert lh(1, 0, 5).op == Opcode.LH
    assert branch(0, 2).op == Opcode.BRANCH
    assert mul(1, 2, 3).op == Opcode.MUL
    assert HALT.op == Opcode.HALT


def test_instructions_are_hashable_and_comparable():
    assert load(1, 0, 3) == load(1, 0, 3)
    assert load(1, 0, 3) != load(2, 0, 3)
    assert len({load(1, 0, 3), load(1, 0, 3), HALT}) == 2


def test_is_memory_classification():
    assert is_memory(load(1, 0))
    assert is_memory(lh(1, 0))
    assert not is_memory(alu(1, 1, 1))
    assert not is_memory(HALT)


def test_is_branch_classification():
    assert is_branch(branch(0, 2))
    assert not is_branch(load(1, 0))


@pytest.mark.parametrize(
    "inst, text",
    [
        (loadimm(1, 3), "loadimm r1, 3"),
        (alu(1, 2, 3), "add r1, r2, r3"),
        (alu(1, 2, 3, AluOp.XOR), "xor r1, r2, r3"),
        (load(2, 1, 3), "load r2, 3(r1)"),
        (lh(1, 0, 5), "lh r1, 5(r0)"),
        (branch(0, 2), "beqz r0, +2"),
        (branch(1, -1, BranchCond.NEZ), "bnez r1, -1"),
        (mul(1, 1, 2), "mul r1, r1, r2"),
        (HALT, "halt"),
    ],
)
def test_disassembly(inst: Instruction, text: str):
    assert disassemble(inst) == text
