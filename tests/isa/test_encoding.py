"""Tests for encoding spaces (the symbolic instruction universes)."""

from __future__ import annotations

import pytest

from repro.isa.encoding import (
    PRESETS,
    EncodingSpace,
    space_boom,
    space_dom,
    space_fig2,
    space_mul,
    space_small,
    space_tiny,
)
from repro.isa.instruction import HALT, Opcode


@pytest.mark.parametrize("name, factory", sorted(PRESETS.items()))
def test_presets_enumerate_nonempty_universes(name, factory):
    space = factory()
    universe = space.instructions()
    assert universe, name
    assert universe[0] == HALT  # HALT first: DFS retires short programs early
    assert len(set(universe)) == len(universe)  # no duplicates


def test_size_matches_enumeration():
    space = space_tiny()
    assert space.size() == len(space.instructions())


def test_empty_ranges_exclude_opcodes():
    space = EncodingSpace(load_rd=(1,), load_rs=(0,), load_imm=(0,))
    ops = {inst.op for inst in space.instructions()}
    assert ops == {Opcode.HALT, Opcode.LOAD}


def test_halt_can_be_excluded():
    space = EncodingSpace(halt=False, load_rd=(1,), load_rs=(0,), load_imm=(0,))
    assert HALT not in space.instructions()


def test_tiny_space_contains_the_spectre_gadget():
    """The canonical attack instructions must be expressible."""
    universe = set(space_tiny().instructions())
    from repro.isa.instruction import branch, load

    assert branch(0, 2) in universe
    assert load(1, 0, 3) in universe  # transient secret load
    assert load(2, 1, 0) in universe  # transient transmitter


def test_boom_space_contains_exception_sources():
    universe = space_boom().instructions()
    ops = {inst.op for inst in universe}
    assert Opcode.LH in ops and Opcode.LOAD in ops and Opcode.BRANCH in ops
    lh_imms = {inst.c for inst in universe if inst.op == Opcode.LH}
    assert any(imm % 2 == 1 for imm in lh_imms)  # a misaligned byte address


def test_mul_space_contains_multiplier():
    ops = {inst.op for inst in space_mul().instructions()}
    assert Opcode.MUL in ops


def test_dom_space_is_load_branch_only():
    ops = {inst.op for inst in space_dom().instructions()}
    assert ops == {Opcode.HALT, Opcode.LOAD, Opcode.BRANCH}


def test_fig2_space_scales_with_register_knob():
    assert space_fig2(extra_reg=True).size() > space_fig2(extra_reg=False).size()
