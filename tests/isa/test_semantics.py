"""Tests for the shared single-instruction executor."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.isa.instruction import (
    HALT,
    AluOp,
    BranchCond,
    alu,
    branch,
    lh,
    load,
    loadimm,
    mul,
)
from repro.isa.params import MachineParams
from repro.isa.semantics import EXC_ILLEGAL, EXC_MISALIGNED, execute

WRAP = MachineParams(n_regs=4, mem_size=4, n_public=2, value_bits=2)
BOOM = MachineParams(
    n_regs=4, mem_size=4, n_public=2, value_bits=2, wrap_addresses=False
)
DMEM = (1, 2, 3, 0)


def test_halt_halts():
    result = execute(HALT, 0, (0, 0, 0, 0), DMEM, WRAP)
    assert result.halt and result.wb_reg is None


def test_loadimm_masks_to_value_domain():
    result = execute(loadimm(1, 7), 0, (0, 0, 0, 0), DMEM, WRAP)
    assert result.wb_value == 7 & 3


def test_alu_add_and_xor():
    regs = (0, 3, 2, 0)
    assert execute(alu(1, 1, 2), 0, regs, DMEM, WRAP).wb_value == (3 + 2) & 3
    assert execute(alu(1, 1, 2, AluOp.XOR), 0, regs, DMEM, WRAP).wb_value == 3 ^ 2


def test_mul_reports_operands():
    result = execute(mul(1, 1, 2), 0, (0, 3, 2, 0), DMEM, WRAP)
    assert result.wb_value == (3 * 2) & 3
    assert result.mul_ops == (3, 2)


def test_branch_eqz_taken_and_target():
    result = execute(branch(0, 2), 5, (0, 1, 0, 0), DMEM, WRAP)
    assert result.taken is True and result.target == 7


def test_branch_nez_not_taken_falls_through():
    result = execute(branch(0, 2, BranchCond.NEZ), 5, (0, 1, 0, 0), DMEM, WRAP)
    assert result.taken is False and result.target == 6


def test_load_wraps_addresses_on_wrap_cores():
    result = execute(load(1, 1, 3), 0, (0, 2, 0, 0), DMEM, WRAP)
    assert result.addr == 5 and result.mem_word == 1 and result.wb_value == DMEM[1]
    assert result.exception is None


def test_load_out_of_range_faults_on_boom():
    result = execute(load(1, 1, 3), 0, (0, 2, 0, 0), DMEM, BOOM)
    assert result.exception == EXC_ILLEGAL
    assert result.halt and result.wb_value is None
    assert result.transient_value == DMEM[5 % 4]  # physical wrap-around word


def test_lh_even_address_reads_word():
    result = execute(lh(1, 0, 4), 0, (0, 0, 0, 0), DMEM, BOOM)
    assert result.exception is None and result.wb_value == DMEM[2]


def test_lh_odd_address_is_misaligned_with_transient_value():
    result = execute(lh(1, 0, 5), 0, (0, 0, 0, 0), DMEM, BOOM)
    assert result.exception == EXC_MISALIGNED
    assert result.transient_value == DMEM[2]  # the word a Meltdown forward leaks


def test_lh_beyond_range_is_illegal():
    result = execute(lh(1, 0, 8), 0, (0, 0, 0, 0), DMEM, BOOM)
    assert result.exception == EXC_ILLEGAL


@given(
    rs=st.integers(0, 3),
    imm=st.integers(0, 7),
    value=st.integers(0, 3),
)
def test_wrap_loads_never_fault(rs, imm, value):
    regs = tuple(value if r == rs else 0 for r in range(4))
    result = execute(load(1, rs, imm), 0, regs, DMEM, WRAP)
    assert result.exception is None
    assert 0 <= result.mem_word < WRAP.mem_size
    assert result.wb_value == DMEM[result.mem_word]


@given(
    op=st.sampled_from([loadimm(1, 2), alu(2, 1, 3), mul(3, 1, 2), load(1, 0, 1)]),
    regs=st.tuples(*[st.integers(0, 3)] * 4),
)
def test_writeback_values_stay_in_domain(op, regs):
    result = execute(op, 0, regs, DMEM, WRAP)
    if result.wb_value is not None:
        assert 0 <= result.wb_value < WRAP.value_domain


@given(
    pc=st.integers(0, 6),
    offset=st.integers(-3, 3),
    cond_value=st.integers(0, 3),
)
def test_branch_target_is_fallthrough_or_offset(pc, offset, cond_value):
    regs = (cond_value, 0, 0, 0)
    result = execute(branch(0, offset), pc, regs, DMEM, WRAP)
    assert result.target in (pc + 1, pc + offset)
    assert result.taken == (cond_value == 0)


def test_unknown_params_validation():
    with pytest.raises(ValueError):
        MachineParams(n_public=9, mem_size=4)
    with pytest.raises(ValueError):
        MachineParams(value_bits=0)
